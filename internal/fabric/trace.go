package fabric

import (
	"io"
	"sort"
	"time"

	"power10sim/internal/telemetry"
)

// The merged fleet trace: one Chrome trace_event file reconstructing every
// work unit's lifecycle across the whole fleet on the coordinator's clock.
//
// Each unit gets its own thread lane (tid) under a single "fleet" process.
// The lane holds one enclosing "unit:<label>" span from submit to merge, and
// inside it the lifecycle chain:
//
//	queued   — pending intervals (submit→lease, requeue→re-lease)
//	leased:w — each lease hop, annotated with its attempt and outcome
//	running  — the worker-reported execution bracket, mapped from the
//	           worker's clock into the coordinator's via the NTP-style
//	           offset estimated from register/heartbeat round-trips
//	shipped  — worker-finish to coordinator-accept (delivery + merge)
//	merged   — an instant marking the accept-once commit
//
// Worker-clock timestamps are clamped into their enclosing lease span after
// offset correction: the offset estimate's error bound is the round-trip
// time, so a corrected timestamp can land slightly outside the lease that
// provably contained it, and an out-of-parent child would render as a broken
// trace. Clamping trades sub-RTT accuracy for structural validity.

// uview is a renderable copy of one unit's lifecycle, taken under c.mu so
// trace building runs lock-free.
type uview struct {
	key      string
	label    string
	trace    telemetry.TraceContext
	state    unitState
	failed   bool
	attempt  int
	sub      time.Time
	mergedAt time.Time
	mergedBy string
	hops     []hop
}

// WriteTrace renders the merged fleet trace as Chrome trace_event JSON. It
// can be called at any point in the sweep (the obsserver /fleet/trace
// endpoint serves it live); in-flight units render with their lifecycle so
// far, open-ended at "now".
func (c *Coordinator) WriteTrace(w io.Writer) error {
	c.mu.Lock()
	now := c.now()
	start := c.start
	offsets := make(map[string]int64, len(c.workers))
	for id, ws := range c.workers {
		if ws.rttMicros > 0 {
			offsets[id] = ws.offsetMicros
		}
	}
	views := make([]uview, 0, len(c.units))
	for _, u := range c.units {
		v := uview{
			key: u.key, label: u.label, trace: u.trace,
			state: u.state, failed: u.failed, attempt: u.attempt,
			sub: u.submitted, mergedAt: u.mergedAt, mergedBy: u.mergedBy,
			hops: make([]hop, 0, len(u.hops)),
		}
		for _, h := range u.hops {
			v.hops = append(v.hops, *h)
		}
		views = append(views, v)
	}
	c.mu.Unlock()

	sort.Slice(views, func(i, j int) bool {
		if views[i].label != views[j].label {
			return views[i].label < views[j].label
		}
		return views[i].key < views[j].key
	})

	rel := func(t time.Time) int64 {
		us := t.Sub(start).Microseconds()
		if us < 0 {
			us = 0
		}
		return us
	}
	startMicro := start.UnixMicro()
	// corr maps a worker-clock unix-µs timestamp onto the trace timeline:
	// add the worker's (coordinator − worker) offset, then rebase to the
	// trace epoch. An unknown worker (never reported an offset) maps with
	// offset zero — same-host fleets, where clocks agree anyway.
	corr := func(workerID string, us int64) int64 {
		return us + offsets[workerID] - startMicro
	}

	var evs []telemetry.Event
	for tid, v := range views {
		evs = append(evs, telemetry.Event{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": v.label + " " + short(v.key)},
		})
		var children []telemetry.Event
		span := func(name, cat string, ts, end int64, args map[string]any) int64 {
			if end <= ts {
				end = ts + 1
			}
			children = append(children, telemetry.Event{
				Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: end - ts, Pid: 0, Tid: tid, Args: args,
			})
			return end
		}

		// Queued spans are the gaps the hop record leaves: submit (or the
		// previous hop's end) up to the next lease, plus the live tail for a
		// unit still pending at dump time.
		qStart := v.sub
		for i, h := range v.hops {
			qEnd := h.leased
			if qEnd.After(qStart) {
				span("queued", "queue", rel(qStart), rel(qEnd), map[string]any{"interval": i + 1})
			}
			if h.ended.IsZero() {
				qStart = now
			} else {
				qStart = h.ended
			}
		}
		if v.state == statePending && qStart.Before(now) {
			span("queued", "queue", rel(qStart), rel(now), map[string]any{"interval": len(v.hops) + 1})
		}

		lastEnd := rel(v.sub)
		for i, h := range v.hops {
			attempt := i + 1
			hopEnd := h.ended
			outcome := h.outcome
			if hopEnd.IsZero() {
				hopEnd = now
				outcome = "open"
			}
			lts, lend := rel(h.leased), rel(hopEnd)
			// The execution bracket, offset-corrected and clamped into its
			// lease (see the package comment on why clamping is right).
			var rts, rend int64 = -1, -1
			if h.startedW > 0 && h.finishedW >= h.startedW {
				rts = corr(h.workerID, h.startedW)
				rend = corr(h.workerID, h.finishedW)
				if rts < lts {
					rts = lts
				}
				if rend > lend {
					rend = lend
				}
				if rend <= rts {
					rend = rts + 1
				}
				if rend > lend {
					lend = rend // keep the lease span enclosing
				}
			}
			end := span("leased:"+h.worker, "lease", lts, lend, map[string]any{
				"attempt": attempt,
				"outcome": outcome,
				"span_id": telemetry.SpanID(v.trace.TraceID, "leased", attempt),
			})
			if end > lastEnd {
				lastEnd = end
			}
			if rts >= 0 {
				span("running", "exec", rts, rend, map[string]any{"worker": h.worker})
				if outcome == "merged" || outcome == "failed" {
					// Delivery lag: worker finished (corrected) → result
					// accepted on the coordinator.
					span("shipped", "ship", rend, rel(h.ended), map[string]any{"worker": h.worker})
				}
			}
		}
		if !v.mergedAt.IsZero() {
			ts := rel(v.mergedAt)
			evs = append(evs, telemetry.Event{
				Name: "merged", Cat: "merge", Ph: "i", Ts: ts, Pid: 0, Tid: tid,
			})
			if ts+1 > lastEnd {
				lastEnd = ts + 1
			}
		}
		for _, ch := range children {
			if ch.Ts+ch.Dur > lastEnd {
				lastEnd = ch.Ts + ch.Dur
			}
		}
		state := v.state.String()
		if v.state == stateDone && v.failed {
			state = "failed"
		}
		parent := telemetry.Event{
			Name: "unit:" + v.label, Cat: "unit", Ph: "X",
			Ts: rel(v.sub), Dur: lastEnd + 1 - rel(v.sub), Pid: 0, Tid: tid,
			Args: map[string]any{
				"trace_id": v.trace.TraceID,
				"key":      v.key,
				"attempts": v.attempt,
				"state":    state,
				"merged":   v.state == stateDone && !v.failed,
				"worker":   v.mergedBy,
			},
		}
		evs = append(evs, parent)
		evs = append(evs, children...)
	}
	return telemetry.WriteChromeTrace(w, map[int]string{0: "fleet (coordinator clock)"}, evs)
}
