package fabric

import (
	"errors"
	"fmt"

	"encoding/json"

	"power10sim/internal/isa"
	"power10sim/internal/power"
	"power10sim/internal/runner"
	"power10sim/internal/sampling"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// The codec translates between the runner's in-memory request/result values
// and their JSON wire forms. The design mirrors the disk cache on purpose:
//
//   - A WireRequest ships the full simulation identity by value — the entire
//     uarch.Config, the program's instructions and initial state, and every
//     run parameter — never a name to be resolved remotely. The worker
//     recomputes runner.ContentKey over the decoded request and refuses the
//     unit on mismatch, so a codec bug or corrupted payload can never make a
//     worker silently simulate the wrong point.
//   - A WireResult ships only simulator ground truth (Activity, upset
//     outcome, sampling metadata) exactly like a p10cache-v1 payload; the
//     coordinator recomputes the power Report locally on decode. A result
//     that crossed the wire is therefore indistinguishable from a disk-cache
//     load, which is the established determinism argument for byte-identical
//     merged output.

// WireRequest is the encoded simulation request. Program fields are copied
// into wireProgram rather than embedding *isa.Program: the program's lazy PC
// index (a sync.Once) must not be copied or serialized, and the exported
// subset is exactly the content the fingerprint covers.
type WireRequest struct {
	Schema    string         `json:"schema"`
	Config    uarch.Config   `json:"config"`
	Workload  wireWorkload   `json:"workload"`
	SMT       int            `json:"smt"`
	Budget    uint64         `json:"budget"`
	Warmup    uint64         `json:"warmup"`
	MaxCycles uint64         `json:"max_cycles"`
	Upset     *uarch.Upset   `json:"upset,omitempty"`
	Sample    *sampling.Spec `json:"sample,omitempty"`
}

type wireWorkload struct {
	Name     string             `json:"name"`
	Category workloads.Category `json:"category"`
	Weight   float64            `json:"weight"`
	Budget   uint64             `json:"budget"`
	Warmup   uint64             `json:"warmup"`
	Program  wireProgram        `json:"program"`
}

type wireProgram struct {
	Name     string            `json:"name"`
	Code     []isa.Inst        `json:"code"`
	Entry    int               `json:"entry"`
	InitGPR  map[int]uint64    `json:"init_gpr,omitempty"`
	InitMem  map[uint64][]byte `json:"init_mem,omitempty"`
	CodeBase uint64            `json:"code_base,omitempty"`
}

// WireResult is the completed-unit payload: the diskPayload shape plus the
// unit key it answers and the error taxonomy needed for the coordinator's
// requeue decision.
type WireResult struct {
	Key      string              `json:"key"`
	Activity *uarch.Activity     `json:"activity,omitempty"`
	Upset    *uarch.UpsetOutcome `json:"upset,omitempty"`
	Sampling *sampling.Meta      `json:"sampling,omitempty"`
	// Attempts is the worker-local execution count (its own retry policy).
	Attempts int `json:"attempts,omitempty"`
	// Err is the flattened error for failed units. Transient distinguishes
	// infrastructure failures (requeue on another worker) from deterministic
	// simulation errors (final: every worker would reproduce them).
	Err       string `json:"error,omitempty"`
	Transient bool   `json:"transient,omitempty"`
	// StartedUnixMicro / FinishedUnixMicro bracket the unit's execution on
	// the worker's own wall clock (unix microseconds). The coordinator maps
	// them into its time base with the worker's reported clock offset when
	// building the merged fleet trace; they carry no other semantics.
	StartedUnixMicro  int64 `json:"started_unix_micro,omitempty"`
	FinishedUnixMicro int64 `json:"finished_unix_micro,omitempty"`
}

// EncodeRequest converts a runner request into its wire payload, returning
// the content key that names the unit. Requests the fabric cannot ship —
// chaos-injected runs, or requests without a keyable identity — return
// (nil, "", err) and stay on the local execution path.
func EncodeRequest(req runner.Request) (payload []byte, key string, err error) {
	if req.Cfg == nil || req.W == nil || req.W.Prog == nil {
		return nil, "", errors.New("fabric: request missing config or workload")
	}
	if req.Chaos != nil {
		// Chaos failure budgets are per-process state; shipping them would
		// decouple the budget from the spec instance that owns it.
		return nil, "", errors.New("fabric: chaos requests are not distributable")
	}
	key, ok := runner.ContentKey(req)
	if !ok {
		return nil, "", errors.New("fabric: request is not content-keyable")
	}
	p := req.W.Prog
	wr := WireRequest{
		Schema: ProtocolVersion,
		Config: *req.Cfg,
		Workload: wireWorkload{
			Name:     req.W.Name,
			Category: req.W.Category,
			Weight:   req.W.Weight,
			Budget:   req.W.Budget,
			Warmup:   req.W.Warmup,
			Program: wireProgram{
				Name:     p.Name,
				Code:     p.Code,
				Entry:    p.Entry,
				InitGPR:  p.InitGPR,
				InitMem:  p.InitMem,
				CodeBase: p.CodeBase,
			},
		},
		SMT:       req.SMT,
		Budget:    req.Budget,
		Warmup:    req.Warmup,
		MaxCycles: req.MaxCycles,
		Upset:     req.Upset,
		Sample:    req.Sample,
	}
	payload, err = json.Marshal(&wr)
	if err != nil {
		return nil, "", fmt.Errorf("fabric: encode request: %w", err)
	}
	return payload, key, nil
}

// DecodeRequest reconstructs a runner request from a unit payload and
// verifies its content key against the unit's: the program fingerprint is
// content-based, so a faithful round trip reproduces the key bit-for-bit and
// any divergence proves the payload does not describe the unit it claims to.
func DecodeRequest(payload []byte, wantKey string) (runner.Request, error) {
	var wr WireRequest
	if err := json.Unmarshal(payload, &wr); err != nil {
		return runner.Request{}, fmt.Errorf("fabric: decode request: %w", err)
	}
	if wr.Schema != ProtocolVersion {
		return runner.Request{}, fmt.Errorf("fabric: protocol skew: payload %q, worker %q", wr.Schema, ProtocolVersion)
	}
	cfg := wr.Config
	req := runner.Request{
		Cfg: &cfg,
		W: &workloads.Workload{
			Name:     wr.Workload.Name,
			Category: wr.Workload.Category,
			Weight:   wr.Workload.Weight,
			Budget:   wr.Workload.Budget,
			Warmup:   wr.Workload.Warmup,
			Prog: &isa.Program{
				Name:     wr.Workload.Program.Name,
				Code:     wr.Workload.Program.Code,
				Entry:    wr.Workload.Program.Entry,
				InitGPR:  wr.Workload.Program.InitGPR,
				InitMem:  wr.Workload.Program.InitMem,
				CodeBase: wr.Workload.Program.CodeBase,
			},
		},
		SMT:       wr.SMT,
		Budget:    wr.Budget,
		Warmup:    wr.Warmup,
		MaxCycles: wr.MaxCycles,
		Upset:     wr.Upset,
		Sample:    wr.Sample,
	}
	got, ok := runner.ContentKey(req)
	if !ok {
		return runner.Request{}, errors.New("fabric: decoded request is not content-keyable")
	}
	if wantKey != "" && got != wantKey {
		return runner.Request{}, fmt.Errorf("fabric: content key mismatch: unit %s, payload %s", short(wantKey), short(got))
	}
	return req, nil
}

// EncodeResult flattens a runner result for the wire. Only ground truth
// travels: the power Report is dropped (recomputed on decode) and the error
// is reduced to message + transience class.
func EncodeResult(key string, res runner.Result) WireResult {
	wr := WireResult{
		Key:      key,
		Activity: res.Activity,
		Upset:    res.Upset,
		Sampling: res.Sampling,
		Attempts: res.Attempts,
	}
	if res.Err != nil {
		wr.Err = res.Err.Error()
		wr.Transient = runner.IsTransient(res.Err)
	}
	return wr
}

// DecodeResult rebuilds a runner result on the coordinator, recomputing the
// power Report from the shipped Activity under the original request's config
// — the same derivation a disk-cache load performs. Each call allocates
// fresh Activity/Report values, so concurrent waiters on one unit never
// share mutable state.
func DecodeResult(wr WireResult, req runner.Request) (runner.Result, error) {
	if wr.Err != "" {
		err := errors.New(wr.Err)
		if wr.Transient {
			err = runner.Transient(err)
		}
		return runner.Result{Err: err, Attempts: wr.Attempts}, nil
	}
	if wr.Activity == nil {
		return runner.Result{}, errors.New("fabric: result has neither activity nor error")
	}
	act := *wr.Activity
	res := runner.Result{
		Activity: &act,
		Report:   power.NewModel(req.Cfg).Report(&act),
		Attempts: wr.Attempts,
	}
	if wr.Upset != nil {
		u := *wr.Upset
		res.Upset = &u
	}
	if wr.Sampling != nil {
		s := *wr.Sampling
		res.Sampling = &s
	}
	return res, nil
}

// short abbreviates a content key for log lines and error messages.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
