package fabric

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"power10sim/internal/progress"
	"power10sim/internal/runner"
	"power10sim/internal/telemetry"
)

// ErrBusy is returned (and rendered as HTTP 429 + Retry-After) when an
// external submission would overflow the coordinator's bounded queue.
var ErrBusy = errors.New("fabric: queue full")

// ErrClosed is returned for operations against a draining coordinator.
var ErrClosed = errors.New("fabric: coordinator closed")

// CoordinatorOptions configures a Coordinator. The zero value is usable:
// every field has a default, and nil Bus/Registry follow the repository's
// nil-is-off observability convention.
type CoordinatorOptions struct {
	// LeaseTTL is how long a dispatched unit stays owned by a worker without
	// a heartbeat before it is reclaimed and re-dispatched.
	LeaseTTL time.Duration
	// MaxAttempts bounds dispatch attempts per unit; a unit that exhausts
	// them fails permanently (a deterministic, non-transient error, so the
	// submitting sweep reports it instead of retrying forever).
	MaxAttempts int
	// RetryBackoff is the base re-dispatch delay; attempt n waits
	// RetryBackoff×2^(n-1) (capped at 16×) plus a deterministic per-key
	// jitter, so a thundering herd of reclaimed units fans back out.
	RetryBackoff time.Duration
	// QueueBound caps externally submitted pending units (admission
	// control); the coordinator's own sweep is exempt — its concurrency is
	// already bounded by the experiment harness.
	QueueBound int
	// Resolve maps an external SubmitRequest onto a full simulation request.
	// Nil disables the external submit API (501).
	Resolve func(SubmitRequest) (runner.Request, error)
	// Bus receives fleet lifecycle events (worker joined/lost/drained, unit
	// requeued/duplicate).
	Bus *progress.Bus
	// Registry receives the fabric_* counters and gauges.
	Registry *telemetry.Registry
}

type unitState int

const (
	statePending unitState = iota
	stateLeased
	stateDone
)

func (s unitState) String() string {
	switch s {
	case statePending:
		return "pending"
	case stateLeased:
		return "leased"
	default:
		return "done"
	}
}

// unit is one content-keyed simulation in the coordinator's ledger. A unit
// is created once per key (fleet-wide dedup), transitions
// pending→leased→pending… under lease recovery, and reaches done exactly
// once — the accept-once rule lives in Complete.
type unit struct {
	key     string
	label   string
	payload []byte
	req     runner.Request // original request; Report recomputation + poll

	state     unitState
	attempt   int // dispatch attempts so far
	notBefore time.Time
	leasedTo  string

	leaseExpiry time.Time

	// Lifecycle record for the merged fleet trace: the trace context minted
	// at submit, the submit time, the start of the current pending interval
	// (queue-wait accounting), and one hop per lease. Queued intervals are
	// not stored — they are derivable as the gaps between submit/hop-end and
	// the next lease.
	trace     telemetry.TraceContext
	submitted time.Time
	queuedAt  time.Time
	hops      []*hop
	mergedAt  time.Time
	mergedBy  string // worker name that produced the accepted result

	wire   WireResult // final result once state == stateDone
	failed bool
	done   chan struct{}
}

// hop is one lease of a unit by one worker — the coordinator-side record the
// merged fleet trace and the lease-age/requeue-latency histograms are built
// from. Times are on the coordinator clock except startedW/finishedW, which
// the worker reports on its own clock (unix µs) and the trace builder maps
// through that worker's estimated offset.
type hop struct {
	worker   string // worker name (trace annotation)
	workerID string
	leased   time.Time
	ended    time.Time // zero while the lease is live
	outcome  string    // "merged", "failed", "requeued: <reason>"

	startedW  int64
	finishedW int64
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id      string
	name    string
	workers int
	state   string // live | drained | lost
	last    time.Time

	completed uint64
	failed    uint64

	// offsetMicros/rttMicros are the worker's latest reported clock-offset
	// estimate ((coordinator - worker) µs, with its RTT error bound); zero
	// RTT means never reported. snap is the worker's latest telemetry
	// snapshot, kept for federation — it survives the worker draining so the
	// fleet view doesn't lose counters when a worker leaves cleanly.
	offsetMicros int64
	rttMicros    int64
	snap         *telemetry.Snapshot
}

// Coordinator owns the unit ledger, the worker registry, and the lease
// lifecycle. It implements runner.Executor (Execute), so a stock runner with
// SetExecutor(c.Execute) transparently runs its cache-miss simulations on
// the fleet while every local layer — memo cache, disk cache, run ledger,
// telemetry, progress events — behaves exactly as in a single-process sweep.
type Coordinator struct {
	opts CoordinatorOptions
	now  func() time.Time // injectable clock for lease tests

	mu      sync.Mutex
	start   time.Time // trace epoch: all merged-trace timestamps are µs since this
	units   map[string]*unit
	fifo    []*unit // pending units, dispatch order
	workers map[string]*workerState
	nextID  int
	closed  bool
	wake    chan struct{} // closed and replaced whenever work becomes ready

	requeues   uint64
	duplicates uint64
	corrupt    uint64
	rejected   uint64

	tmPending   *telemetry.Gauge
	tmLive      *telemetry.Gauge
	tmCompleted *telemetry.Counter
	tmRequeued  *telemetry.Counter
	tmDuplicate *telemetry.Counter
	tmCorrupt   *telemetry.Counter
	tmRejected  *telemetry.Counter
	tmJoined    *telemetry.Counter
	tmLost      *telemetry.Counter

	tmQueueWait  *telemetry.Histogram
	tmLeaseAge   *telemetry.Histogram
	tmRequeueLat *telemetry.Histogram

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewCoordinator creates a coordinator and starts its lease sweeper. Close
// it when the sweep is over.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	if opts.QueueBound <= 0 {
		opts.QueueBound = DefaultQueueBound
	}
	reg := opts.Registry
	c := &Coordinator{
		opts:    opts,
		now:     time.Now,
		start:   time.Now(),
		units:   map[string]*unit{},
		workers: map[string]*workerState{},
		wake:    make(chan struct{}),
		// fabric_queue_pending / fabric_workers_live: live queue depth and
		// fleet size. The counters below account every robustness event the
		// fabric absorbs.
		tmPending:   reg.Gauge("fabric_queue_pending"),
		tmLive:      reg.Gauge("fabric_workers_live"),
		tmCompleted: reg.Counter("fabric_units_completed_total"),
		tmRequeued:  reg.Counter("fabric_units_requeued_total"),
		tmDuplicate: reg.Counter("fabric_duplicate_results_total"),
		tmCorrupt:   reg.Counter("fabric_corrupt_results_total"),
		tmRejected:  reg.Counter("fabric_submits_rejected_total"),
		tmJoined:    reg.Counter("fabric_workers_joined_total"),
		tmLost:      reg.Counter("fabric_workers_lost_total"),
		// Dispatch-latency histograms: how long units sit queued before a
		// lease, how long an accepted lease lives before its result merges,
		// and how long a doomed lease lives before the fabric recovers it.
		tmQueueWait:  reg.Histogram("fabric_queue_wait_seconds", telemetry.DurationBuckets()),
		tmLeaseAge:   reg.Histogram("fabric_lease_age_seconds", telemetry.DurationBuckets()),
		tmRequeueLat: reg.Histogram("fabric_requeue_latency_seconds", telemetry.DurationBuckets()),
		sweepStop:    make(chan struct{}),
		sweepDone:    make(chan struct{}),
	}
	go c.sweep()
	return c
}

// Close drains the coordinator: lease long-polls return Closing so workers
// can exit their poll loops, and the sweeper stops. Pending units are left
// in place — their waiters unblock through their own contexts.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.wakeLocked()
	c.mu.Unlock()
	close(c.sweepStop)
	<-c.sweepDone
}

// wakeLocked releases every lease long-poll waiter. Callers hold c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// ---------------------------------------------------------------------------
// Executor: the runner-facing side.

// Execute implements runner.Executor: encode the request, enter it into the
// fleet ledger (deduplicated by content key), and block until the fleet
// delivers its result or ctx is canceled. The returned result is rebuilt
// locally from wire ground truth, so callers cannot distinguish it from a
// local execution.
func (c *Coordinator) Execute(ctx context.Context, req runner.Request) (runner.Result, bool) {
	payload, key, err := EncodeRequest(req)
	if err != nil {
		// Not distributable (chaos run, unkeyable request): decline and let
		// the runner execute locally.
		return runner.Result{}, false
	}
	u, err := c.enqueue(key, spanLabel(req), payload, req, false)
	if err != nil {
		return runner.Result{}, false
	}
	select {
	case <-u.done:
	case <-ctx.Done():
		return runner.Result{Err: ctx.Err()}, true
	}
	res, err := DecodeResult(u.wire, req)
	if err != nil {
		// Cannot happen for an accepted result (Complete validates), but a
		// defensive error beats a nil-Activity panic downstream.
		return runner.Result{Err: err}, true
	}
	return res, true
}

// SubmitExternal is the admission-controlled entry point behind PathSubmit.
func (c *Coordinator) SubmitExternal(req runner.Request) (key string, state string, err error) {
	payload, key, err := EncodeRequest(req)
	if err != nil {
		return "", "", err
	}
	u, err := c.enqueue(key, spanLabel(req), payload, req, true)
	if err != nil {
		return "", "", err
	}
	c.mu.Lock()
	state = u.state.String()
	c.mu.Unlock()
	return key, state, nil
}

// enqueue registers a unit (or joins the existing one — fleet-wide dedup by
// content key). External submissions are bounced with ErrBusy when the
// pending backlog is at QueueBound.
func (c *Coordinator) enqueue(key, label string, payload []byte, req runner.Request, external bool) (*unit, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if u, ok := c.units[key]; ok {
		return u, nil
	}
	if external && len(c.fifo) >= c.opts.QueueBound {
		c.rejected++
		c.tmRejected.Inc()
		return nil, ErrBusy
	}
	now := c.now()
	u := &unit{
		key:     key,
		label:   label,
		payload: payload,
		req:     req,
		state:   statePending,
		// The trace ID is a visible prefix of the content key, so a span in
		// any process's trace can be joined back to cache entries, ledger
		// rows, and run-log lines naming the same simulation.
		trace:     telemetry.NewTraceContext(key),
		submitted: now,
		queuedAt:  now,
		done:      make(chan struct{}),
	}
	c.units[key] = u
	c.fifo = append(c.fifo, u)
	c.tmPending.Set(float64(len(c.fifo)))
	c.wakeLocked()
	return u, nil
}

// ---------------------------------------------------------------------------
// Worker protocol.

// Register adds a worker to the fleet and returns its coordinator-assigned
// identity.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return RegisterResponse{}, ErrClosed
	}
	name := req.Name
	if name == "" {
		name = "worker"
	}
	c.nextID++
	w := &workerState{
		id:      fmt.Sprintf("%s#%d", name, c.nextID),
		name:    name,
		workers: req.Workers,
		state:   "live",
		last:    c.now(),
	}
	c.workers[w.id] = w
	c.tmJoined.Inc()
	c.updateLiveLocked()
	c.opts.Bus.Publish(progress.Event{Kind: progress.KindWorkerJoined, Worker: w.name})
	return RegisterResponse{
		WorkerID:        w.id,
		LeaseTTLSeconds: c.opts.LeaseTTL.Seconds(),
		Protocol:        ProtocolVersion,
		CoordUnixMicro:  c.now().UnixMicro(),
	}, nil
}

// Deregister is a worker's clean goodbye: any leases it still holds go back
// to the queue immediately (no TTL wait).
func (c *Coordinator) Deregister(req DeregisterRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[req.WorkerID]
	if !ok || w.state != "live" {
		return
	}
	if req.Snapshot != nil {
		w.snap = req.Snapshot
	}
	w.state = "drained"
	c.reclaimLocked(w.id, "worker drained")
	c.updateLiveLocked()
	c.opts.Bus.Publish(progress.Event{Kind: progress.KindWorkerDrained, Worker: w.name})
}

// Lease hands out up to max ready units, long-polling up to wait when the
// queue is empty. An unknown worker ID (a coordinator restart, or a worker
// declared lost that came back) gets an error so the worker re-registers.
func (c *Coordinator) Lease(ctx context.Context, workerID string, max int, wait time.Duration) (LeaseResponse, error) {
	if max < 1 {
		max = 1
	}
	deadline := c.now().Add(wait)
	for {
		c.mu.Lock()
		w, ok := c.workers[workerID]
		if !ok || w.state == "lost" || w.state == "drained" {
			c.mu.Unlock()
			return LeaseResponse{}, fmt.Errorf("fabric: unknown worker %q", workerID)
		}
		w.last = c.now()
		if c.closed {
			c.mu.Unlock()
			return LeaseResponse{Closing: true}, nil
		}
		units := c.takeLocked(w.id, max)
		wake := c.wake
		c.mu.Unlock()
		if len(units) > 0 {
			return LeaseResponse{Units: units}, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return LeaseResponse{}, nil
		}
		// Re-check every 200ms even without a wake: a unit in retry backoff
		// becomes ready by clock, not by event.
		tick := 200 * time.Millisecond
		if remain < tick {
			tick = remain
		}
		select {
		case <-wake:
		case <-time.After(tick):
		case <-ctx.Done():
			return LeaseResponse{}, ctx.Err()
		}
	}
}

// takeLocked pops up to max dispatch-ready units off the pending queue and
// leases them to workerID. Callers hold c.mu.
func (c *Coordinator) takeLocked(workerID string, max int) []Unit {
	now := c.now()
	workerName := workerID
	if w, ok := c.workers[workerID]; ok {
		workerName = w.name
	}
	var out []Unit
	kept := c.fifo[:0]
	for _, u := range c.fifo {
		if len(out) < max && !u.notBefore.After(now) {
			u.state = stateLeased
			u.attempt++
			u.leasedTo = workerID
			u.leaseExpiry = now.Add(c.opts.LeaseTTL)
			c.tmQueueWait.Observe(now.Sub(u.queuedAt).Seconds())
			u.hops = append(u.hops, &hop{worker: workerName, workerID: workerID, leased: now})
			out = append(out, Unit{
				Key: u.key, Label: u.label, Attempt: u.attempt,
				// The worker's spans parent under this lease hop.
				Trace:   u.trace.Child("leased", u.attempt),
				Payload: u.payload,
			})
		} else {
			kept = append(kept, u)
		}
	}
	for i := len(kept); i < len(c.fifo); i++ {
		c.fifo[i] = nil
	}
	c.fifo = kept
	c.tmPending.Set(float64(len(c.fifo)))
	return out
}

// Heartbeat extends the worker's leases and reports the keys it no longer
// owns (reclaimed and possibly re-dispatched elsewhere) so it can abandon
// them.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if w, ok := c.workers[req.WorkerID]; ok {
		w.last = now
		if req.ClockRTTMicros > 0 {
			w.offsetMicros, w.rttMicros = req.ClockOffsetMicros, req.ClockRTTMicros
		}
	}
	resp := HeartbeatResponse{CoordUnixMicro: now.UnixMicro()}
	for _, key := range req.Keys {
		u, ok := c.units[key]
		if ok && u.state == stateLeased && u.leasedTo == req.WorkerID {
			u.leaseExpiry = now.Add(c.opts.LeaseTTL)
		} else {
			resp.Expired = append(resp.Expired, key)
		}
	}
	return resp
}

// Complete records delivered results under the accept-once rule:
//
//   - The first structurally valid result for a unit wins, no matter which
//     dispatch attempt produced it — a late result from a lease that already
//     expired is accepted if the re-dispatch hasn't finished yet (the
//     simulator's determinism makes both copies bit-identical).
//   - Any later result for a done unit is counted and discarded.
//   - A corrupt result (unknown key, or neither activity nor error) rejects
//     the delivery; if it named a live unit, that unit re-enters the queue
//     immediately rather than waiting out its lease.
//   - A transient worker-side failure re-enters the queue (bounded by
//     MaxAttempts); a deterministic simulation error is final — every
//     worker would reproduce it, exactly as a local run would.
func (c *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if w, ok := c.workers[req.WorkerID]; ok {
		w.last = now
		if req.ClockRTTMicros > 0 {
			w.offsetMicros, w.rttMicros = req.ClockOffsetMicros, req.ClockRTTMicros
		}
		if req.Snapshot != nil {
			w.snap = req.Snapshot
		}
	}
	var resp CompleteResponse
	for _, wr := range req.Results {
		u, ok := c.units[wr.Key]
		if !ok {
			resp.Rejected++
			c.corrupt++
			c.tmCorrupt.Inc()
			continue
		}
		if u.state == stateDone {
			resp.Duplicates++
			c.duplicates++
			c.tmDuplicate.Inc()
			c.opts.Bus.Publish(progress.Event{Kind: progress.KindUnitDuplicate, Sim: u.label, Worker: req.WorkerID})
			continue
		}
		// Stamp the delivering worker's execution bracket onto its open hop
		// (if it still holds one) before the outcome decides the hop's fate —
		// even a requeued attempt keeps its "ran from/to" record in the trace.
		if h := openHop(u, req.WorkerID); h != nil {
			h.startedW = wr.StartedUnixMicro
			h.finishedW = wr.FinishedUnixMicro
		}
		if wr.Err == "" && wr.Activity == nil {
			// Structurally corrupt: claims success but carries no ground
			// truth. Recover the unit now instead of waiting for the lease.
			resp.Rejected++
			c.corrupt++
			c.tmCorrupt.Inc()
			c.requeueLocked(u, "corrupt result")
			continue
		}
		if wr.Err != "" && wr.Transient {
			// The worker's own retries are exhausted; give the unit to
			// another worker (or fail it past the dispatch budget).
			c.requeueLocked(u, fmt.Sprintf("transient failure: %s", wr.Err))
			resp.Accepted++
			continue
		}
		if h := openHop(u, req.WorkerID); h != nil {
			h.ended = now
			if wr.Err != "" {
				h.outcome = "failed"
			} else {
				h.outcome = "merged"
			}
			c.tmLeaseAge.Observe(now.Sub(h.leased).Seconds())
		}
		c.finishLocked(u, wr, req.WorkerID)
		resp.Accepted++
	}
	return resp
}

// openHop finds the unit's live hop held by workerID (empty matches any).
// Callers hold c.mu.
func openHop(u *unit, workerID string) *hop {
	for i := len(u.hops) - 1; i >= 0; i-- {
		h := u.hops[i]
		if h.ended.IsZero() && (workerID == "" || h.workerID == workerID) {
			return h
		}
	}
	return nil
}

// finishLocked transitions a unit to done and releases its waiters. Callers
// hold c.mu.
func (c *Coordinator) finishLocked(u *unit, wr WireResult, workerID string) {
	u.state = stateDone
	u.leasedTo = ""
	u.wire = wr
	u.failed = wr.Err != ""
	u.mergedAt = c.now()
	if w, ok := c.workers[workerID]; ok {
		u.mergedBy = w.name
		if u.failed {
			w.failed++
		} else {
			w.completed++
		}
	}
	c.tmCompleted.Inc()
	close(u.done)
}

// requeueLocked puts a leased (or just-delivered-corrupt) unit back in the
// dispatch queue with exponential, per-key-jittered backoff — or fails it
// permanently once the dispatch budget is spent. Callers hold c.mu.
func (c *Coordinator) requeueLocked(u *unit, reason string) {
	if u.state == stateDone {
		return
	}
	now := c.now()
	// Close the lease hop this requeue recovers from (the current
	// leaseholder's, when the unit is leased) so the merged trace shows the
	// doomed attempt with its recovery reason and the requeue-latency
	// histogram sees how long the fabric took to notice.
	if h := openHop(u, u.leasedTo); h != nil {
		h.ended = now
		h.outcome = "requeued: " + reason
		c.tmRequeueLat.Observe(now.Sub(h.leased).Seconds())
	}
	if u.attempt >= c.opts.MaxAttempts {
		// Permanent and deliberately non-transient: the submitting runner
		// must report it, not retry a unit the whole fleet already failed.
		c.finishLocked(u, WireResult{
			Key: u.key,
			Err: fmt.Sprintf("fabric: unit %s (%s) failed after %d dispatch attempts: %s",
				short(u.key), u.label, u.attempt, reason),
		}, "")
		return
	}
	backoff := c.opts.RetryBackoff << uint(min(u.attempt-1, 4))
	backoff += jitter(u.key, u.attempt, c.opts.RetryBackoff)
	u.state = statePending
	u.leasedTo = ""
	u.notBefore = now.Add(backoff)
	u.queuedAt = now
	c.fifo = append(c.fifo, u)
	c.requeues++
	c.tmRequeued.Inc()
	c.tmPending.Set(float64(len(c.fifo)))
	c.opts.Bus.Publish(progress.Event{Kind: progress.KindUnitRequeued, Sim: u.label, Attempt: u.attempt + 1, Err: reason})
	c.wakeLocked()
}

// reclaimLocked requeues every unit leased to workerID, returning the count.
// Callers hold c.mu.
func (c *Coordinator) reclaimLocked(workerID, reason string) int {
	n := 0
	for _, u := range c.units {
		if u.state == stateLeased && u.leasedTo == workerID {
			c.requeueLocked(u, reason)
			n++
		}
	}
	return n
}

func (c *Coordinator) updateLiveLocked() {
	live := 0
	for _, w := range c.workers {
		if w.state == "live" {
			live++
		}
	}
	c.tmLive.Set(float64(live))
}

// jitter derives a deterministic per-(key,attempt) delay in [0, base), so
// reclaimed units spread out without the coordinator consuming entropy (the
// repository's reproducibility discipline: identical failure sequences yield
// identical schedules).
func jitter(key string, attempt int, base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%d", key, attempt)))
	return time.Duration(binary.LittleEndian.Uint64(h[:8]) % uint64(base))
}

// sweep is the lease reaper: it expires stale leases and declares workers
// lost after 2×TTL of silence, reclaiming their units.
func (c *Coordinator) sweep() {
	defer close(c.sweepDone)
	tick := c.opts.LeaseTTL / 4
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.sweepStop:
			return
		case <-t.C:
			c.sweepOnce()
		}
	}
}

func (c *Coordinator) sweepOnce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for _, w := range c.workers {
		if w.state == "live" && now.Sub(w.last) > 2*c.opts.LeaseTTL {
			w.state = "lost"
			n := c.reclaimLocked(w.id, "worker lost")
			c.tmLost.Inc()
			c.updateLiveLocked()
			c.opts.Bus.Publish(progress.Event{Kind: progress.KindWorkerLost, Worker: w.name, Count: n})
		}
	}
	for _, u := range c.units {
		if u.state == stateLeased && u.leaseExpiry.Before(now) {
			c.requeueLocked(u, "lease expired")
		}
	}
	// Units coming out of retry backoff become ready by clock; nudge any
	// long-poll waiters to re-scan.
	c.wakeLocked()
}

// ---------------------------------------------------------------------------
// Status.

// Fleet snapshots the worker table and queue counters for /status, the
// dashboard, and PathFleet.
func (c *Coordinator) Fleet() FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	fs := FleetStatus{Queue: QueueStatus{
		Requeues:   c.requeues,
		Duplicates: c.duplicates,
		Corrupt:    c.corrupt,
		Rejected:   c.rejected,
	}}
	leases := map[string]int{}
	for _, u := range c.units {
		switch u.state {
		case statePending:
			fs.Queue.Pending++
		case stateLeased:
			fs.Queue.Leased++
			leases[u.leasedTo]++
		case stateDone:
			if u.failed {
				fs.Queue.Failed++
			} else {
				fs.Queue.Done++
			}
		}
	}
	for _, w := range c.workers {
		fs.Workers = append(fs.Workers, WorkerStatus{
			Name:               w.name,
			State:              w.state,
			Workers:            w.workers,
			Leased:             leases[w.id],
			Completed:          w.completed,
			Failed:             w.failed,
			LastSeenSeconds:    now.Sub(w.last).Seconds(),
			ClockOffsetSeconds: float64(w.offsetMicros) / 1e6,
		})
	}
	sort.Slice(fs.Workers, func(i, j int) bool { return fs.Workers[i].Name < fs.Workers[j].Name })
	return fs
}

// FederatedSnapshot merges the workers' pushed telemetry snapshots into the
// coordinator's own registry snapshot (telemetry.Federate): the fleet-wide
// /metrics view. With no registry and no worker snapshots it degenerates to
// an empty snapshot; with workers but no local registry the worker series
// still federate.
func (c *Coordinator) FederatedSnapshot() telemetry.Snapshot {
	local := c.opts.Registry.Snapshot()
	c.mu.Lock()
	ids := make([]string, 0, len(c.workers))
	for id, w := range c.workers {
		if w.snap != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	workers := make(map[string]telemetry.Snapshot, len(ids))
	for _, id := range ids {
		w := c.workers[id]
		// Label by advertised name; a name clash (two workers launched with
		// the same -name) falls back to the uniquified coordinator ID, in
		// deterministic ID order so reruns label identically.
		key := w.name
		if _, dup := workers[key]; dup {
			key = w.id
		}
		workers[key] = *w.snap
	}
	c.mu.Unlock()
	return telemetry.Federate(local, workers)
}

// Poll answers the external poll API for one unit key.
func (c *Coordinator) Poll(key string) PollResponse {
	c.mu.Lock()
	u, ok := c.units[key]
	if !ok {
		c.mu.Unlock()
		return PollResponse{Key: key, State: "unknown"}
	}
	state := u.state.String()
	attempt := u.attempt
	var wire WireResult
	var req runner.Request
	if u.state == stateDone {
		if u.failed {
			state = "failed"
		}
		wire = u.wire
		req = u.req
	}
	c.mu.Unlock()

	resp := PollResponse{Key: key, State: state, Attempts: attempt}
	if state == "failed" {
		resp.Err = wire.Err
		return resp
	}
	if state == "done" {
		if res, err := DecodeResult(wire, req); err == nil && res.Activity != nil {
			resp.Cycles = res.Activity.Cycles
			resp.Instructions = res.Activity.Instructions
			resp.IPC = res.Activity.IPC()
			resp.CPI = res.Activity.CPI()
			if res.Report != nil {
				resp.PowerTotal = res.Report.Total
			}
		}
	}
	return resp
}

// ---------------------------------------------------------------------------
// HTTP surface.

// Handler returns the coordinator's HTTP mux: the worker protocol plus the
// external submit/poll/fleet API. obsserver mounts it under the same server
// that serves /status and the dashboard.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := c.Register(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST "+PathDeregister, func(w http.ResponseWriter, r *http.Request) {
		var req DeregisterRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		c.Deregister(req)
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		wait := time.Duration(req.WaitSeconds * float64(time.Second))
		resp, err := c.Lease(r.Context(), req.WorkerID, req.Max, wait)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.Heartbeat(req))
	})
	mux.HandleFunc("POST "+PathComplete, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.Complete(req))
	})
	mux.HandleFunc("POST "+PathSubmit, func(w http.ResponseWriter, r *http.Request) {
		if c.opts.Resolve == nil {
			http.Error(w, "fabric: no submit resolver configured", http.StatusNotImplemented)
			return
		}
		var req SubmitRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		simReq, err := c.opts.Resolve(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key, state, err := c.SubmitExternal(simReq)
		switch {
		case errors.Is(err, ErrBusy):
			// Backpressure: tell the client when to come back — after
			// roughly one lease generation the queue has moved.
			w.Header().Set("Retry-After", strconv.Itoa(int(c.opts.LeaseTTL.Seconds())+1))
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, SubmitResponse{Key: key, State: state})
	})
	mux.HandleFunc("GET "+PathPoll, func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing key parameter", http.StatusBadRequest)
			return
		}
		writeJSON(w, c.Poll(key))
	})
	mux.HandleFunc("GET "+PathFleet, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Fleet())
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// spanLabel mirrors the runner's "workload@config/smtN" event label so fleet
// events and simulation events name a unit identically.
func spanLabel(req runner.Request) string {
	smt := req.SMT
	if smt < 1 {
		smt = 1
	}
	return fmt.Sprintf("%s@%s/smt%d", req.W.Name, req.Cfg.Name, smt)
}
