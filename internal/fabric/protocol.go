// Package fabric is the distributed sweep fabric: a stdlib-HTTP
// coordinator/worker protocol that shards the experiment harness's
// simulations across worker processes while preserving the repository's
// central invariant — the merged stdout of a distributed sweep is
// byte-identical to a single-process run, regardless of worker count,
// join/leave order, or injected failures.
//
// Robustness is the design center:
//
//   - Work units are content-keyed (runner.ContentKey — the same SHA-256 the
//     disk cache and the campaign ledger address simulations by), so the
//     fleet dedups in flight: two submitters of the same point share one
//     unit, and a warm worker serves it from the shared p10cache-v1 disk
//     cache without re-simulating.
//   - Units are dispatched under time-limited leases. Workers heartbeat to
//     extend them; a missed heartbeat or dead worker expires the lease and
//     the unit is re-dispatched with bounded, deterministically-jittered
//     backoff (generalizing the runner's single-process retry policy).
//   - Completions are accepted once. A slow-then-recovered worker's late
//     result either wins the race (and the re-dispatched copy becomes the
//     duplicate) or is discarded — a unit's result is recorded exactly once,
//     which the determinism of the simulator makes safe: both copies are
//     bit-identical.
//   - Results carry only simulator ground truth (the Activity counters); the
//     coordinator recomputes the power report locally, exactly like a disk
//     cache load, so a fleet result is indistinguishable from a local one.
//
// The coordinator embeds into the observability server (internal/obsserver
// mounts Handler() under /fabric/ and surfaces FleetStatus in /status), and
// the external submit/poll API gives any HTTP client a sweep-as-a-service
// entry point with admission control: a bounded queue that answers 429 with
// Retry-After under pressure.
package fabric

import (
	"time"

	"power10sim/internal/telemetry"
)

// ProtocolVersion is the fabric wire-schema generation. It is embedded in
// every request payload and checked on both sides, so a version-skewed
// worker rejects units instead of misinterpreting them.
const ProtocolVersion = "p10fabric-v1"

// Worker-protocol and client-API endpoint paths, all rooted under the
// coordinator's HTTP surface (obsserver mounts them verbatim).
const (
	PathRegister   = "/fabric/register"
	PathDeregister = "/fabric/deregister"
	PathLease      = "/fabric/lease"
	PathHeartbeat  = "/fabric/heartbeat"
	PathComplete   = "/fabric/complete"
	PathSubmit     = "/fabric/submit"
	PathPoll       = "/fabric/poll"
	PathFleet      = "/fabric/fleet"
)

// Defaults for CoordinatorOptions.
const (
	DefaultLeaseTTL     = 10 * time.Second
	DefaultMaxAttempts  = 5
	DefaultRetryBackoff = 250 * time.Millisecond
	DefaultQueueBound   = 1024
)

// Unit is one leased work item: a content-keyed simulation request.
type Unit struct {
	// Key is the simulation's content key (runner.ContentKey).
	Key string `json:"key"`
	// Label is the human-readable "workload@config/smtN" identity.
	Label string `json:"label"`
	// Attempt is the 1-based dispatch attempt this lease represents.
	Attempt int `json:"attempt"`
	// Trace is the unit's distributed-tracing context: the trace ID minted at
	// enqueue (a prefix of the content key) with Parent set to this lease
	// hop's span ID, so worker-side telemetry joins the coordinator's span
	// chain without coordination.
	Trace telemetry.TraceContext `json:"trace"`
	// Payload is the encoded WireRequest (see codec.go).
	Payload []byte `json:"payload"`
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is the worker's self-chosen identity (hostname-pid by default);
	// the coordinator uniquifies clashes.
	Name string `json:"name"`
	// Workers is the worker's local simulation parallelism (fleet-table
	// diagnostics only).
	Workers int `json:"workers"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// WorkerID is the coordinator-assigned identity all later calls carry.
	WorkerID string `json:"worker_id"`
	// LeaseTTLSeconds is the lease duration; workers heartbeat at a fraction
	// of it.
	LeaseTTLSeconds float64 `json:"lease_ttl_seconds"`
	// Protocol echoes ProtocolVersion for skew detection.
	Protocol string `json:"protocol"`
	// CoordUnixMicro is the coordinator's wall clock (unix microseconds) at
	// response time — the server timestamp of an NTP-style exchange. The
	// worker brackets the call with its own clock and estimates its offset as
	// CoordUnixMicro - (t_send+t_recv)/2, refining it on every heartbeat.
	CoordUnixMicro int64 `json:"coord_unix_micro"`
}

// DeregisterRequest is a clean goodbye: the worker has completed (or
// abandoned) its leases and is draining.
type DeregisterRequest struct {
	WorkerID string `json:"worker_id"`
	// Snapshot is the worker's final telemetry snapshot, so counters from a
	// cleanly-drained worker survive in the federated fleet view after the
	// worker's own /metrics endpoint is gone.
	Snapshot *telemetry.Snapshot `json:"snapshot,omitempty"`
}

// LeaseRequest asks for up to Max units, long-polling up to WaitSeconds when
// the queue is empty.
type LeaseRequest struct {
	WorkerID    string  `json:"worker_id"`
	Max         int     `json:"max"`
	WaitSeconds float64 `json:"wait_seconds"`
}

// LeaseResponse carries the leased units (possibly none after a long-poll
// timeout). Closing tells the worker the coordinator is shutting down.
type LeaseResponse struct {
	Units   []Unit `json:"units"`
	Closing bool   `json:"closing,omitempty"`
}

// HeartbeatRequest extends the worker's leases on the listed unit keys. It
// doubles as the clock-sync carrier: the worker reports its current best
// offset estimate so the coordinator can translate worker-clock timestamps
// into its own time base when building the merged fleet trace.
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	Keys     []string `json:"keys"`
	// ClockOffsetMicros is the worker's estimate of (coordinator clock -
	// worker clock), from the minimum-RTT register/heartbeat exchange.
	ClockOffsetMicros int64 `json:"clock_offset_micros,omitempty"`
	// ClockRTTMicros is the round-trip time of the exchange that produced the
	// estimate — its error bound.
	ClockRTTMicros int64 `json:"clock_rtt_micros,omitempty"`
}

// HeartbeatResponse reports keys the worker no longer holds (expired and
// re-dispatched); the worker may abandon them mid-run.
type HeartbeatResponse struct {
	Expired []string `json:"expired,omitempty"`
	// CoordUnixMicro timestamps the response on the coordinator clock, the
	// per-heartbeat sample the worker's offset estimator consumes.
	CoordUnixMicro int64 `json:"coord_unix_micro"`
}

// CompleteRequest delivers finished unit results, piggybacking the worker's
// telemetry snapshot (for metrics federation) and its latest clock-offset
// estimate (so even a worker whose first batch finishes before its first
// heartbeat gets offset-corrected trace spans).
type CompleteRequest struct {
	WorkerID string       `json:"worker_id"`
	Results  []WireResult `json:"results"`
	// Snapshot is the worker's current telemetry snapshot; the coordinator
	// keeps the latest per worker and federates them on demand.
	Snapshot          *telemetry.Snapshot `json:"snapshot,omitempty"`
	ClockOffsetMicros int64               `json:"clock_offset_micros,omitempty"`
	ClockRTTMicros    int64               `json:"clock_rtt_micros,omitempty"`
}

// CompleteResponse accounts the delivery: Accepted results were recorded,
// Duplicates were discarded under the accept-once rule, Rejected failed
// validation (unknown key, corrupt payload).
type CompleteResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	Rejected   int `json:"rejected"`
}

// SubmitRequest is the external sweep-as-a-service entry point: one
// simulation point by catalog name. (The coordinator's own sweep submits
// internally with full request values; this API resolves names against the
// workload catalog.)
type SubmitRequest struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`
	SMT      int    `json:"smt"`
	// Budget overrides the workload's default dynamic-instruction budget
	// when > 0.
	Budget uint64 `json:"budget,omitempty"`
}

// SubmitResponse acknowledges an accepted submission with the unit's content
// key — the handle PathPoll answers for.
type SubmitResponse struct {
	Key string `json:"key"`
	// State is the unit's state at submit time ("pending", or "done" when
	// the fleet had already computed this point).
	State string `json:"state"`
}

// PollResponse reports a unit's state and, once done, its headline
// measurements.
type PollResponse struct {
	Key      string `json:"key"`
	State    string `json:"state"` // pending | leased | done | failed | unknown
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"error,omitempty"`
	// Measurements (done units only).
	Cycles       uint64  `json:"cycles,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`
	CPI          float64 `json:"cpi,omitempty"`
	PowerTotal   float64 `json:"power_total,omitempty"`
}

// WorkerStatus is one worker's row in the fleet table.
type WorkerStatus struct {
	Name string `json:"name"`
	// State is "live", "draining", "drained", or "lost".
	State string `json:"state"`
	// Workers is the worker's local parallelism.
	Workers int `json:"workers"`
	// Leased is the number of units currently leased to it.
	Leased int `json:"leased"`
	// Completed / Failed count accepted results attributed to it.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// LastSeenSeconds is the age of its last RPC.
	LastSeenSeconds float64 `json:"last_seen_seconds"`
	// ClockOffsetSeconds is the worker's reported clock offset relative to
	// the coordinator (coordinator - worker), zero until first reported.
	ClockOffsetSeconds float64 `json:"clock_offset_seconds,omitempty"`
}

// QueueStatus aggregates the unit ledger.
type QueueStatus struct {
	Pending    int    `json:"pending"`
	Leased     int    `json:"leased"`
	Done       int    `json:"done"`
	Failed     int    `json:"failed"`
	Requeues   uint64 `json:"requeues"`
	Duplicates uint64 `json:"duplicates"`
	Corrupt    uint64 `json:"corrupt_results"`
	Rejected   uint64 `json:"submits_rejected"`
}

// FleetStatus is the coordinator's live view: the /status fabric block, the
// /fabric/fleet payload, and the dashboard's fleet table all render it.
type FleetStatus struct {
	Workers []WorkerStatus `json:"workers"`
	Queue   QueueStatus    `json:"queue"`
}
