package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"power10sim/internal/runner"
	"power10sim/internal/telemetry"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// traceEventsOf parses a WriteTrace rendering back into events.
func traceEventsOf(t *testing.T, coord *Coordinator) []telemetry.Event {
	t.Helper()
	var buf bytes.Buffer
	if err := coord.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []telemetry.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	return tf.TraceEvents
}

// TestMergedTraceStructure drives one unit through the full distributed
// lifecycle — queued, leased to a worker that loses it, requeued, leased to a
// second worker that reports execution timestamps on a skewed clock, merged —
// and asserts the rendered Chrome trace shows the whole chain, with the
// worker-clock execution bracket mapped into its lease on the coordinator's
// timeline. This is the golden structural test for the 2-worker fleet trace.
func TestMergedTraceStructure(t *testing.T) {
	reg := telemetry.NewRegistry()
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Hour, Registry: reg})
	defer coord.Close()

	regA, _ := coord.Register(RegisterRequest{Name: "alpha"})
	regB, _ := coord.Register(RegisterRequest{Name: "beta"})
	if regA.CoordUnixMicro == 0 || regB.CoordUnixMicro == 0 {
		t.Fatal("register response missing coordinator clock sample")
	}

	req := testRequest(uarch.POWER10(), workloads.Compress(), 1)
	payload, key, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	u, err := coord.enqueue(key, "fig5", payload, req, false)
	if err != nil {
		t.Fatal(err)
	}
	if u.trace.TraceID != key[:16] {
		t.Fatalf("unit trace id %q, want content-key prefix %q", u.trace.TraceID, key[:16])
	}

	time.Sleep(2 * time.Millisecond) // queue wait for the first lease
	lease, err := coord.Lease(context.Background(), regA.WorkerID, 1, 0)
	if err != nil || len(lease.Units) != 1 {
		t.Fatalf("lease A: %v, %d units", err, len(lease.Units))
	}
	// The wire unit carries a child trace context derived from the unit's.
	if got := lease.Units[0].Trace; got.TraceID != key[:16] ||
		got.Parent != telemetry.SpanID(key[:16], "leased", 1) {
		t.Fatalf("leased trace context = %+v", got)
	}
	time.Sleep(2 * time.Millisecond) // lease A lives a little, then expires
	coord.mu.Lock()
	coord.requeueLocked(u, "test expiry")
	u.notBefore = time.Time{}
	coord.mu.Unlock()

	time.Sleep(2 * time.Millisecond) // second queued interval
	lease, err = coord.Lease(context.Background(), regB.WorkerID, 1, 0)
	if err != nil || len(lease.Units) != 1 {
		t.Fatalf("lease B: %v, %d units", err, len(lease.Units))
	}

	// Worker B runs on a clock 3s behind the coordinator and says so: its
	// raw timestamps are nonsense on the coordinator timeline until the
	// reported offset maps them back.
	const skew = 3 * time.Second
	res := runner.New(1).Do(req)
	wire := EncodeResult(key, res)
	wire.StartedUnixMicro = time.Now().Add(-skew).UnixMicro()
	time.Sleep(2 * time.Millisecond)
	wire.FinishedUnixMicro = time.Now().Add(-skew).UnixMicro()
	resp := coord.Complete(CompleteRequest{
		WorkerID:          regB.WorkerID,
		Results:           []WireResult{wire},
		ClockOffsetMicros: skew.Microseconds(),
		ClockRTTMicros:    500,
	})
	if resp.Accepted != 1 {
		t.Fatalf("result not accepted: %+v", resp)
	}

	evs := traceEventsOf(t, coord)
	var parent *telemetry.Event
	byName := map[string][]telemetry.Event{}
	for i, e := range evs {
		if e.Ph == "M" {
			continue
		}
		if strings.HasPrefix(e.Name, "unit:") {
			parent = &evs[i]
			continue
		}
		byName[e.Name] = append(byName[e.Name], e)
	}
	if parent == nil {
		t.Fatal("no enclosing unit span")
	}
	if parent.Name != "unit:fig5" {
		t.Errorf("unit span name %q, want unit:fig5", parent.Name)
	}
	if parent.Args["trace_id"] != key[:16] || parent.Args["merged"] != true {
		t.Errorf("unit span args = %+v", parent.Args)
	}
	if parent.Args["worker"] != "beta" {
		t.Errorf("merging worker = %v, want beta", parent.Args["worker"])
	}
	if n, _ := parent.Args["attempts"].(float64); n != 2 {
		t.Errorf("attempts = %v, want 2", parent.Args["attempts"])
	}

	if len(byName["queued"]) != 2 {
		t.Errorf("%d queued spans, want 2 (initial + post-requeue)", len(byName["queued"]))
	}
	alpha, beta := byName["leased:alpha"], byName["leased:beta"]
	if len(alpha) != 1 || len(beta) != 1 {
		t.Fatalf("lease spans alpha=%d beta=%d, want 1 each", len(alpha), len(beta))
	}
	if oc, _ := alpha[0].Args["outcome"].(string); !strings.HasPrefix(oc, "requeued") {
		t.Errorf("alpha lease outcome = %q, want requeued prefix", oc)
	}
	if oc, _ := beta[0].Args["outcome"].(string); oc != "merged" {
		t.Errorf("beta lease outcome = %q, want merged", oc)
	}
	running := byName["running"]
	if len(running) != 1 {
		t.Fatalf("%d running spans, want 1 (alpha reported no execution)", len(running))
	}
	// The offset-corrected execution bracket must land inside B's lease —
	// that is the whole point of the clock model.
	r, l := running[0], beta[0]
	if r.Ts < l.Ts || r.Ts+r.Dur > l.Ts+l.Dur {
		t.Errorf("running [%d,%d) escapes lease [%d,%d)", r.Ts, r.Ts+r.Dur, l.Ts, l.Ts+l.Dur)
	}
	if len(byName["shipped"]) != 1 {
		t.Errorf("%d shipped spans, want 1", len(byName["shipped"]))
	}
	if len(byName["merged"]) != 1 || byName["merged"][0].Ph != "i" {
		t.Errorf("merged instant missing or wrong phase: %+v", byName["merged"])
	}
	// Every child sits inside the unit span.
	for name, group := range byName {
		for _, e := range group {
			if e.Ts < parent.Ts || e.Ts+e.Dur > parent.Ts+parent.Dur {
				t.Errorf("%s span [%d,%d) escapes unit span [%d,%d)",
					name, e.Ts, e.Ts+e.Dur, parent.Ts, parent.Ts+parent.Dur)
			}
		}
	}

	// The dispatch-latency histograms saw the same lifecycle: two queue
	// waits (initial + requeue), one recovered lease, one merged lease.
	if n := reg.Histogram("fabric_queue_wait_seconds", telemetry.DurationBuckets()).Count(); n != 2 {
		t.Errorf("queue-wait observations = %d, want 2", n)
	}
	if n := reg.Histogram("fabric_requeue_latency_seconds", telemetry.DurationBuckets()).Count(); n != 1 {
		t.Errorf("requeue-latency observations = %d, want 1", n)
	}
	if n := reg.Histogram("fabric_lease_age_seconds", telemetry.DurationBuckets()).Count(); n != 1 {
		t.Errorf("lease-age observations = %d, want 1", n)
	}
}

// TestTraceInFlightUnit: a unit still leased at dump time renders open-ended
// rather than being dropped or closing the trace invalidly.
func TestTraceInFlightUnit(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Hour})
	defer coord.Close()
	reg, _ := coord.Register(RegisterRequest{Name: "w"})
	req := testRequest(uarch.POWER10(), workloads.Compress(), 1)
	payload, key, _ := EncodeRequest(req)
	if _, err := coord.enqueue(key, "live", payload, req, false); err != nil {
		t.Fatal(err)
	}
	if lease, _ := coord.Lease(context.Background(), reg.WorkerID, 1, 0); len(lease.Units) != 1 {
		t.Fatal("lease failed")
	}
	evs := traceEventsOf(t, coord)
	var sawOpen bool
	for _, e := range evs {
		if strings.HasPrefix(e.Name, "leased:") {
			if oc, _ := e.Args["outcome"].(string); oc == "open" {
				sawOpen = true
			}
		}
		if e.Ph == "X" && e.Dur < 1 {
			t.Errorf("span %q has non-positive duration %d", e.Name, e.Dur)
		}
	}
	if !sawOpen {
		t.Error("live lease not rendered as an open hop")
	}
}

// TestFederatedSnapshotCollectsWorkers: worker snapshots pushed over
// Complete/Deregister show up in the coordinator's federated scrape under
// worker=<name> and worker=fleet.
func TestFederatedSnapshotCollectsWorkers(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("local_only").Add(1)
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Hour, Registry: reg})
	defer coord.Close()
	regW, _ := coord.Register(RegisterRequest{Name: "steady"})

	wreg := telemetry.NewRegistry()
	wreg.Counter("sims_total").Add(9)
	snap := wreg.Snapshot()
	coord.Deregister(DeregisterRequest{WorkerID: regW.WorkerID, Snapshot: &snap})

	fed := coord.FederatedSnapshot()
	want := map[string]uint64{"": 0, "steady": 9, telemetry.FleetLabelValue: 9}
	got := map[string]uint64{}
	for _, c := range fed.Counters {
		if c.Name == "sims_total" {
			got[c.Labels[telemetry.WorkerLabelKey]] = c.Value
		}
		if c.Name == "local_only" && len(c.Labels) != 0 {
			t.Errorf("local series grew labels: %+v", c.Labels)
		}
	}
	delete(want, "")
	for k, v := range want {
		if got[k] != v {
			t.Errorf("sims_total{worker=%q} = %d, want %d", k, got[k], v)
		}
	}
}

// TestWorkerClockEstimate: the min-RTT sample wins, and degenerate samples
// are ignored.
func TestWorkerClockEstimate(t *testing.T) {
	w := NewWorker(runner.New(1), WorkerOptions{Coordinator: "http://unused"})
	// First sample: 10ms RTT, coordinator 1s ahead of the midpoint.
	w.updateClock(0, 10_000, 1_005_000)
	off, rtt := w.clockEstimate()
	if rtt != 10_000 || off != 1_000_000 {
		t.Fatalf("first sample: offset %d rtt %d", off, rtt)
	}
	// Worse RTT: discarded even though it disagrees.
	w.updateClock(0, 40_000, 5_020_000)
	if off, rtt = w.clockEstimate(); rtt != 10_000 || off != 1_000_000 {
		t.Fatalf("worse sample replaced the estimate: offset %d rtt %d", off, rtt)
	}
	// Better RTT: wins.
	w.updateClock(100_000, 102_000, 2_101_000)
	if off, rtt = w.clockEstimate(); rtt != 2_000 || off != 2_000_000 {
		t.Fatalf("better sample did not win: offset %d rtt %d", off, rtt)
	}
	// Degenerate samples (no coordinator stamp, negative interval) ignored.
	w.updateClock(0, 1, 0)
	w.updateClock(10, 5, 1000)
	if off, rtt = w.clockEstimate(); rtt != 2_000 || off != 2_000_000 {
		t.Fatalf("degenerate sample accepted: offset %d rtt %d", off, rtt)
	}
}
