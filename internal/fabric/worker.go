package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"power10sim/internal/runner"
	"power10sim/internal/telemetry"
)

// WorkerChaos injects fabric-level failures into a worker for robustness
// drills (scripts/fabric_check.sh and the fabric tests). These are distinct
// from runner.ChaosSpec: they break the *protocol participant*, not the
// simulation, exercising exactly the recovery paths the coordinator
// advertises.
type WorkerChaos struct {
	// Mode is "kill" (exit the process mid-batch, before reporting — the
	// lease-expiry path), "stall" (stop heartbeating and deliver late — the
	// accept-once path), or "corrupt" (deliver a mangled result — the
	// reject-and-requeue path).
	Mode string
	// After is how many units the worker completes normally first.
	After int
}

// ParseChaos parses the CLI "mode:N" form ("kill:3", "stall:1", "corrupt:0");
// a bare "mode" means mode:0.
func ParseChaos(s string) (*WorkerChaos, error) {
	if s == "" {
		return nil, nil
	}
	mode, after, _ := strings.Cut(s, ":")
	c := &WorkerChaos{Mode: mode}
	if after != "" {
		n, err := strconv.Atoi(after)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("fabric: bad chaos trigger count in %q", s)
		}
		c.After = n
	}
	switch c.Mode {
	case "kill", "stall", "corrupt":
		return c, nil
	}
	return nil, fmt.Errorf("fabric: unknown chaos mode %q (want kill|stall|corrupt, optionally :N)", s)
}

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:port).
	Coordinator string
	// Name is the worker's advertised identity; defaults to hostname-pid.
	Name string
	// Batch is the maximum units leased at once; defaults to the pool's
	// parallelism so a fleet of workers load-balances instead of one worker
	// swallowing the queue.
	Batch int
	// PollWait is the lease long-poll duration (default 5s).
	PollWait time.Duration
	// Chaos, when non-nil, makes this worker misbehave on purpose.
	Chaos *WorkerChaos
	// Logf receives worker lifecycle lines (nil discards).
	Logf func(format string, args ...any)
	// Registry, when non-nil, is snapshotted and piggybacked on every result
	// delivery (and the final deregister) so the coordinator can federate
	// this worker's telemetry into the fleet-wide /metrics view.
	Registry *telemetry.Registry
	// OnLeaseExpired is invoked (from the heartbeat goroutine) with the unit
	// keys the coordinator reports as no longer ours — the hook cmd/p10worker
	// uses to flight-record a lost lease. Nil ignores the report, matching
	// the previous behavior: the batch still finishes and its late results
	// resolve under the accept-once rule.
	OnLeaseExpired func(keys []string)
	// Exit terminates the process for chaos "kill" (default os.Exit) — a seam
	// so the CLI can dump its flight recorder before dying, and tests can
	// observe the kill without losing the process.
	Exit func(code int)
}

// Worker is the fleet's execution side: it leases content-keyed units from a
// coordinator, runs them on a local runner pool — inheriting every local
// robustness layer: panic recovery, watchdog timeouts, retry policy, and the
// shared p10cache-v1 disk cache and p10runlog-v1 ledger — and reports
// results, heartbeating while it works.
type Worker struct {
	pool   *runner.Runner
	opts   WorkerOptions
	client *http.Client

	id       string
	ttl      time.Duration
	executed int // completed units, for chaos triggers

	mu      sync.Mutex
	inKeys  []string // keys currently being executed (heartbeat set)
	inUnits []Unit   // the leased units behind inKeys (flight-recorder context)

	// Clock-offset estimate against the coordinator, refreshed by every
	// register/heartbeat exchange and kept at the minimum-RTT sample (the
	// tightest error bound). offsetMicros is (coordinator − worker) µs.
	clockMu      sync.Mutex
	offsetMicros int64
	rttMicros    int64
}

// NewWorker wires a worker to an already-configured runner pool. The caller
// owns the pool's setup (policy, cache dir, run ledger, bus) — the worker
// only feeds it.
func NewWorker(pool *runner.Runner, opts WorkerOptions) *Worker {
	if opts.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Batch <= 0 {
		opts.Batch = pool.Workers()
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 5 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Exit == nil {
		opts.Exit = os.Exit
	}
	return &Worker{pool: pool, opts: opts, client: &http.Client{}}
}

// InFlight returns the units the worker is currently executing — the
// flight-recorder context for a lost lease or a chaos kill.
func (w *Worker) InFlight() []Unit {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Unit(nil), w.inUnits...)
}

// updateClock folds one NTP-style sample into the offset estimate: the
// coordinator stamped its clock at coordMicro somewhere between our t0 (send)
// and t3 (receive), so offset ≈ coordMicro − (t0+t3)/2 with error bound
// rtt = t3 − t0. The minimum-RTT sample wins: it has the tightest bound.
func (w *Worker) updateClock(t0, t3, coordMicro int64) {
	if coordMicro == 0 || t3 < t0 {
		return
	}
	rtt := t3 - t0
	if rtt <= 0 {
		rtt = 1
	}
	offset := coordMicro - (t0+t3)/2
	w.clockMu.Lock()
	if w.rttMicros == 0 || rtt <= w.rttMicros {
		w.offsetMicros, w.rttMicros = offset, rtt
	}
	w.clockMu.Unlock()
}

// clockEstimate returns the current (offset, rtt) estimate in µs; rtt == 0
// means no exchange has completed yet.
func (w *Worker) clockEstimate() (offset, rtt int64) {
	w.clockMu.Lock()
	defer w.clockMu.Unlock()
	return w.offsetMicros, w.rttMicros
}

// snapshot returns the worker's telemetry snapshot for piggybacking, nil when
// no registry is configured.
func (w *Worker) snapshot() *telemetry.Snapshot {
	if w.opts.Registry == nil {
		return nil
	}
	s := w.opts.Registry.Snapshot()
	return &s
}

// Run is the worker's main loop: register (retrying until the coordinator
// answers), then lease→execute→complete until ctx is canceled or the
// coordinator announces it is closing. On cancellation the worker finishes
// its in-flight batch, reports it, and deregisters — the graceful-drain path
// SIGTERM triggers in cmd/p10worker.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	w.opts.Logf("worker %s registered as %s (lease ttl %s)", w.opts.Name, w.id, w.ttl)
	defer w.deregister()
	// A coordinator restart is survivable (re-register on 410), but a
	// coordinator that stays unreachable must not pin the worker forever: a
	// drained coordinator tears its HTTP surface down shortly after
	// announcing Closing, and a worker between polls only ever sees the
	// dead address. Bound the continuously-unreachable window at a few
	// lease TTLs and exit so a supervisor can decide what happens next.
	maxUnreachable := 3 * w.ttl
	if maxUnreachable < 30*time.Second {
		maxUnreachable = 30 * time.Second
	}
	var unreachableSince time.Time
	for {
		lease, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			// Coordinator unreachable or restarted: back off, re-register if
			// it no longer knows us (it answers 410 Gone).
			if errors.Is(err, errGone) {
				w.opts.Logf("worker %s: lease rejected, re-registering", w.id)
				if rerr := w.register(ctx); rerr != nil {
					return rerr
				}
				continue
			}
			if unreachableSince.IsZero() {
				unreachableSince = time.Now()
			} else if time.Since(unreachableSince) > maxUnreachable {
				return fmt.Errorf("fabric: coordinator unreachable for %s: %w", maxUnreachable, err)
			}
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
				return nil
			}
			continue
		}
		unreachableSince = time.Time{}
		if lease.Closing {
			w.opts.Logf("worker %s: coordinator closing, draining", w.id)
			return nil
		}
		if len(lease.Units) == 0 {
			if ctx.Err() != nil {
				return nil
			}
			continue
		}
		// Execute the batch to completion even when ctx is canceled
		// mid-batch: the drain contract is "finish what you hold, report it,
		// leave" — abandoning leased units would force the coordinator
		// through a needless TTL wait.
		results := w.executeBatch(ctx, lease.Units)
		if err := w.complete(results); err != nil {
			w.opts.Logf("worker %s: report failed (%v); coordinator will reclaim the leases", w.id, err)
		}
		if ctx.Err() != nil {
			return nil
		}
	}
}

// errGone marks a lease rejection that requires re-registration.
var errGone = errors.New("fabric: worker unknown to coordinator")

func (w *Worker) register(ctx context.Context) error {
	for {
		var resp RegisterResponse
		t0 := time.Now().UnixMicro()
		err := w.post(ctx, PathRegister, RegisterRequest{Name: w.opts.Name, Workers: w.pool.Workers()}, &resp)
		t3 := time.Now().UnixMicro()
		if err == nil {
			// First clock sample: even a worker whose whole batch finishes
			// before its first heartbeat has an offset estimate to report.
			w.updateClock(t0, t3, resp.CoordUnixMicro)
			if resp.Protocol != ProtocolVersion {
				return fmt.Errorf("fabric: protocol skew: coordinator %q, worker %q", resp.Protocol, ProtocolVersion)
			}
			w.id = resp.WorkerID
			w.ttl = time.Duration(resp.LeaseTTLSeconds * float64(time.Second))
			if w.ttl <= 0 {
				w.ttl = DefaultLeaseTTL
			}
			return nil
		}
		select {
		case <-time.After(500 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (w *Worker) deregister() {
	// Best-effort, short deadline: the coordinator may already be gone. The
	// final telemetry snapshot rides along so the federated fleet view keeps
	// this worker's counters after it drains.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = w.post(ctx, PathDeregister, DeregisterRequest{WorkerID: w.id, Snapshot: w.snapshot()}, &struct{}{})
}

func (w *Worker) lease(ctx context.Context) (LeaseResponse, error) {
	var resp LeaseResponse
	err := w.post(ctx, PathLease, LeaseRequest{
		WorkerID:    w.id,
		Max:         w.opts.Batch,
		WaitSeconds: w.opts.PollWait.Seconds(),
	}, &resp)
	return resp, err
}

// executeBatch runs the leased units on the local pool while a heartbeat
// goroutine keeps their leases alive, then encodes the results — applying
// chaos injection where configured.
func (w *Worker) executeBatch(ctx context.Context, units []Unit) []WireResult {
	keys := make([]string, len(units))
	for i, u := range units {
		keys[i] = u.Key
	}
	w.mu.Lock()
	w.inKeys = keys
	w.inUnits = append([]Unit(nil), units...)
	w.mu.Unlock()

	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	if w.chaosMode() != "stall" || w.executed+len(units) <= w.opts.Chaos.After {
		hbDone.Add(1)
		go w.heartbeatLoop(hbStop, &hbDone)
	}

	reqs := make([]runner.Request, len(units))
	decodeErr := make([]error, len(units))
	for i, u := range units {
		reqs[i], decodeErr[i] = DecodeRequest(u.Payload, u.Key)
	}
	// Execute through the pool: decode failures become error results below,
	// valid requests run with full local caching and fault tolerance. Each
	// unit is timed individually on the worker's wall clock (the pool bounds
	// concurrency inside DoCtx, so the goroutine-per-unit fan-out below has
	// the same scheduling RunAllCtx would give).
	run := make([]runner.Request, 0, len(units))
	runIdx := make([]int, 0, len(units))
	for i := range reqs {
		if decodeErr[i] == nil {
			run = append(run, reqs[i])
			runIdx = append(runIdx, i)
		}
	}
	results := make([]runner.Result, len(run))
	started := make([]int64, len(run))
	finished := make([]int64, len(run))
	timedRun := func(j int) {
		started[j] = time.Now().UnixMicro()
		results[j] = w.pool.DoCtx(ctx, run[j])
		finished[j] = time.Now().UnixMicro()
	}
	if w.pool.Workers() == 1 {
		// Serial fast path, mirroring RunAllCtx: no goroutines, identical
		// observable behavior.
		for j := range run {
			timedRun(j)
		}
	} else {
		var wg sync.WaitGroup
		for j := range run {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				timedRun(j)
			}(j)
		}
		wg.Wait()
	}

	close(hbStop)
	hbDone.Wait()
	w.mu.Lock()
	w.inKeys = nil
	w.inUnits = nil
	w.mu.Unlock()

	out := make([]WireResult, len(units))
	for i, u := range units {
		if decodeErr[i] != nil {
			// A payload the worker cannot verify is an infrastructure
			// problem, not a simulation result: report transient so the
			// coordinator re-dispatches (another worker, or another build,
			// may fare better).
			out[i] = WireResult{Key: u.Key, Err: decodeErr[i].Error(), Transient: true}
		}
	}
	for j, res := range results {
		i := runIdx[j]
		out[i] = EncodeResult(units[i].Key, res)
		out[i].StartedUnixMicro = started[j]
		out[i].FinishedUnixMicro = finished[j]
		w.executed++
		w.applyChaos(&out[i], units[i])
	}
	return out
}

func (w *Worker) chaosMode() string {
	if w.opts.Chaos == nil {
		return ""
	}
	return w.opts.Chaos.Mode
}

// applyChaos fires the configured failure once the worker has completed
// Chaos.After units normally.
func (w *Worker) applyChaos(res *WireResult, u Unit) {
	c := w.opts.Chaos
	if c == nil || w.executed <= c.After {
		return
	}
	switch c.Mode {
	case "kill":
		// Die with the batch unreported: the coordinator recovers these
		// units through lease expiry. The Exit seam lets the CLI flush its
		// flight recorder first; the exit code stays 3 (fabric_check.sh and
		// trace_check.sh assert it).
		w.opts.Logf("worker %s: chaos kill after %d unit(s)", w.id, w.executed-1)
		w.opts.Exit(3)
	case "stall":
		// Heartbeats were suppressed for this batch (executeBatch); now
		// outlive the lease before delivering, so the result arrives after
		// the coordinator reclaimed the unit — the accept-once race.
		w.opts.Logf("worker %s: chaos stall on %s", w.id, u.Label)
		time.Sleep(w.ttl + w.ttl/2)
		c.Mode = "" // stall once, then behave
	case "corrupt":
		// Deliver a structurally invalid result (success claim with no
		// ground truth). The coordinator must reject it and requeue.
		w.opts.Logf("worker %s: chaos corrupt on %s", w.id, u.Label)
		res.Activity = nil
		res.Err = ""
		c.Mode = ""
	}
}

// heartbeatLoop extends the in-flight leases every ttl/3 until stopped.
func (w *Worker) heartbeatLoop(stop <-chan struct{}, done *sync.WaitGroup) {
	defer done.Done()
	t := time.NewTicker(w.ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.mu.Lock()
			keys := append([]string(nil), w.inKeys...)
			w.mu.Unlock()
			if len(keys) == 0 {
				continue
			}
			offset, rtt := w.clockEstimate()
			ctx, cancel := context.WithTimeout(context.Background(), w.ttl/2)
			var resp HeartbeatResponse
			t0 := time.Now().UnixMicro()
			err := w.post(ctx, PathHeartbeat, HeartbeatRequest{
				WorkerID: w.id, Keys: keys,
				ClockOffsetMicros: offset, ClockRTTMicros: rtt,
			}, &resp)
			t3 := time.Now().UnixMicro()
			cancel()
			if err != nil {
				continue
			}
			w.updateClock(t0, t3, resp.CoordUnixMicro)
			if len(resp.Expired) > 0 && w.opts.OnLeaseExpired != nil {
				w.opts.OnLeaseExpired(append([]string(nil), resp.Expired...))
			}
		}
	}
}

func (w *Worker) complete(results []WireResult) error {
	// Retry delivery briefly: a blip here would otherwise cost a full lease
	// TTL of re-execution elsewhere.
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		offset, rtt := w.clockEstimate()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		var resp CompleteResponse
		err = w.post(ctx, PathComplete, CompleteRequest{
			WorkerID: w.id, Results: results,
			Snapshot:          w.snapshot(),
			ClockOffsetMicros: offset, ClockRTTMicros: rtt,
		}, &resp)
		cancel()
		if err == nil {
			if resp.Duplicates > 0 || resp.Rejected > 0 {
				w.opts.Logf("worker %s: delivery: %d accepted, %d duplicate, %d rejected",
					w.id, resp.Accepted, resp.Duplicates, resp.Rejected)
			}
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	return err
}

// post is the worker's single HTTP primitive: JSON in, JSON out.
func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		io.Copy(io.Discard, resp.Body)
		return errGone
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fabric: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
