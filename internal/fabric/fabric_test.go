package fabric

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"power10sim/internal/runner"
	"power10sim/internal/telemetry"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// testRequest builds a small representative simulation request.
func testRequest(cfg *uarch.Config, w *workloads.Workload, smt int) runner.Request {
	return runner.Request{Cfg: cfg, W: w, SMT: smt,
		Budget: 6000 / uint64(smt), Warmup: 500, MaxCycles: 10_000_000}
}

func TestCodecRoundTripPreservesContentKey(t *testing.T) {
	req := testRequest(uarch.POWER10(), workloads.Compress(), 2)
	payload, key, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRequest(payload, key)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := runner.ContentKey(dec)
	if !ok || got != key {
		t.Fatalf("round-trip key = %s, want %s", got, key)
	}
	// A payload delivered under the wrong unit key must be refused.
	other, otherKey, err := EncodeRequest(testRequest(uarch.POWER9(), workloads.Compress(), 1))
	if err != nil {
		t.Fatal(err)
	}
	_ = otherKey
	if _, err := DecodeRequest(other, key); err == nil {
		t.Fatal("decode accepted a payload whose content key does not match the unit")
	}
}

func TestChaosRequestsAreNotDistributable(t *testing.T) {
	req := testRequest(uarch.POWER10(), workloads.Compress(), 1)
	req.Chaos = &runner.ChaosSpec{PanicFirst: 1}
	if _, _, err := EncodeRequest(req); err == nil {
		t.Fatal("chaos request encoded for the wire; its failure budget must stay process-local")
	}
}

// startFleet launches a coordinator behind an httptest server plus n workers,
// returning the executor-wired coordinator and a cleanup.
func startFleet(t *testing.T, n int, chaos ...*WorkerChaos) *Coordinator {
	t.Helper()
	coord := NewCoordinator(CoordinatorOptions{
		LeaseTTL:     2 * time.Second,
		RetryBackoff: 10 * time.Millisecond,
	})
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		var c *WorkerChaos
		if i < len(chaos) {
			c = chaos[i]
		}
		w := NewWorker(runner.New(2), WorkerOptions{
			Coordinator: srv.URL,
			Name:        "testworker",
			PollWait:    100 * time.Millisecond,
			Chaos:       c,
		})
		go func() {
			defer func() { done <- struct{}{} }()
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		for i := 0; i < n; i++ {
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Error("worker did not drain")
			}
		}
		coord.Close()
		srv.Close()
	})
	return coord
}

func fleetRequests() []runner.Request {
	return []runner.Request{
		testRequest(uarch.POWER10(), workloads.Compress(), 1),
		testRequest(uarch.POWER10(), workloads.Compress(), 2),
		testRequest(uarch.POWER9(), workloads.Compress(), 1),
		testRequest(uarch.POWER10(), workloads.Daxpy(64, 8), 1),
	}
}

// TestFleetMatchesLocalRun is the determinism contract end to end: a runner
// whose executor ships every simulation through the HTTP fabric must return
// results bit-identical to a plain local runner, for every fleet size.
func TestFleetMatchesLocalRun(t *testing.T) {
	local := runner.New(2)
	want := local.RunAll(fleetRequests())

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			coord := startFleet(t, workers)

			r := runner.New(2)
			r.SetExecutor(coord.Execute)
			got := r.RunAll(fleetRequests())

			for i := range want {
				if want[i].Err != nil || got[i].Err != nil {
					t.Fatalf("request %d: local err %v, fleet err %v", i, want[i].Err, got[i].Err)
				}
				if !reflect.DeepEqual(want[i].Activity, got[i].Activity) {
					t.Errorf("request %d: fleet activity differs from local", i)
				}
				if !reflect.DeepEqual(want[i].Report, got[i].Report) {
					t.Errorf("request %d: fleet report differs from local", i)
				}
			}
			st := r.Stats()
			if st.Remote == 0 {
				t.Error("no simulations ran remotely")
			}
			if st.Remote != st.Misses {
				t.Errorf("%d of %d unique simulations ran locally on the coordinator; all should have shipped",
					st.Misses-st.Remote, st.Misses)
			}
			fs := coord.Fleet()
			if fs.Queue.Done != int(st.Remote) {
				t.Errorf("fleet done = %d, runner remote = %d", fs.Queue.Done, st.Remote)
			}
		})
	}
}

// TestFleetSurvivesCorruptWorker injects a corrupt-response worker next to a
// healthy one: results must stay bit-identical and the corruption must be
// visible in the queue accounting.
func TestFleetSurvivesCorruptWorker(t *testing.T) {
	coord := startFleet(t, 2, &WorkerChaos{Mode: "corrupt", After: 0})

	local := runner.New(2)
	want := local.RunAll(fleetRequests())

	r := runner.New(2)
	r.SetExecutor(coord.Execute)
	got := r.RunAll(fleetRequests())

	for i := range want {
		if got[i].Err != nil {
			t.Fatalf("request %d failed through fleet: %v", i, got[i].Err)
		}
		if !reflect.DeepEqual(want[i].Activity, got[i].Activity) {
			t.Errorf("request %d: fleet activity differs from local under chaos", i)
		}
	}
}

func TestAcceptOnceAndLateResult(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Hour})
	defer coord.Close()

	regA, _ := coord.Register(RegisterRequest{Name: "a"})
	regB, _ := coord.Register(RegisterRequest{Name: "b"})

	req := testRequest(uarch.POWER10(), workloads.Compress(), 1)
	payload, key, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	u, err := coord.enqueue(key, "test", payload, req, false)
	if err != nil {
		t.Fatal(err)
	}

	lease, err := coord.Lease(context.Background(), regA.WorkerID, 1, 0)
	if err != nil || len(lease.Units) != 1 {
		t.Fatalf("lease A: %v, %d units", err, len(lease.Units))
	}
	// Simulate a lease expiry: force the unit back and hand it to B.
	coord.mu.Lock()
	coord.requeueLocked(u, "test expiry")
	u.notBefore = time.Time{}
	coord.mu.Unlock()
	lease, err = coord.Lease(context.Background(), regB.WorkerID, 1, 0)
	if err != nil || len(lease.Units) != 1 {
		t.Fatalf("lease B: %v, %d units", err, len(lease.Units))
	}
	if lease.Units[0].Attempt != 2 {
		t.Fatalf("re-dispatch attempt = %d, want 2", lease.Units[0].Attempt)
	}

	// A's late result arrives first: determinism makes it as good as B's, so
	// it must be accepted.
	res := runner.New(1).Do(req)
	wire := EncodeResult(key, res)
	resp := coord.Complete(CompleteRequest{WorkerID: regA.WorkerID, Results: []WireResult{wire}})
	if resp.Accepted != 1 {
		t.Fatalf("late result not accepted: %+v", resp)
	}
	select {
	case <-u.done:
	default:
		t.Fatal("unit not released to waiters after acceptance")
	}
	// B finishes too: accept-once discards and counts the duplicate.
	resp = coord.Complete(CompleteRequest{WorkerID: regB.WorkerID, Results: []WireResult{wire}})
	if resp.Duplicates != 1 || resp.Accepted != 0 {
		t.Fatalf("duplicate not discarded: %+v", resp)
	}
	if fs := coord.Fleet(); fs.Queue.Duplicates != 1 || fs.Queue.Requeues != 1 {
		t.Errorf("queue accounting = %+v, want 1 duplicate, 1 requeue", fs.Queue)
	}
}

func TestCorruptResultRequeuesUnit(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Hour, RetryBackoff: time.Nanosecond})
	defer coord.Close()
	reg, _ := coord.Register(RegisterRequest{Name: "w"})

	req := testRequest(uarch.POWER10(), workloads.Compress(), 1)
	payload, key, _ := EncodeRequest(req)
	if _, err := coord.enqueue(key, "test", payload, req, false); err != nil {
		t.Fatal(err)
	}
	if lease, _ := coord.Lease(context.Background(), reg.WorkerID, 1, 0); len(lease.Units) != 1 {
		t.Fatal("lease failed")
	}
	// Success claim with no ground truth: structurally corrupt.
	resp := coord.Complete(CompleteRequest{WorkerID: reg.WorkerID, Results: []WireResult{{Key: key}}})
	if resp.Rejected != 1 {
		t.Fatalf("corrupt result not rejected: %+v", resp)
	}
	// An unknown key is corruption too.
	resp = coord.Complete(CompleteRequest{WorkerID: reg.WorkerID, Results: []WireResult{{Key: "feedbeef"}}})
	if resp.Rejected != 1 {
		t.Fatalf("unknown-key result not rejected: %+v", resp)
	}
	fs := coord.Fleet()
	if fs.Queue.Corrupt != 2 {
		t.Errorf("corrupt count = %d, want 2", fs.Queue.Corrupt)
	}
	if fs.Queue.Pending != 1 {
		t.Errorf("unit not requeued after corrupt result: %+v", fs.Queue)
	}
}

func TestUnitFailsPermanentlyAfterMaxAttempts(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{
		LeaseTTL: time.Hour, MaxAttempts: 2, RetryBackoff: time.Nanosecond})
	defer coord.Close()
	reg, _ := coord.Register(RegisterRequest{Name: "w"})

	req := testRequest(uarch.POWER10(), workloads.Compress(), 1)
	payload, key, _ := EncodeRequest(req)
	u, err := coord.enqueue(key, "test", payload, req, false)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; ; attempt++ {
		lease, err := coord.Lease(context.Background(), reg.WorkerID, 1, 250*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if len(lease.Units) == 0 {
			t.Fatalf("no lease on attempt %d", attempt)
		}
		coord.Complete(CompleteRequest{WorkerID: reg.WorkerID, Results: []WireResult{
			{Key: key, Err: "worker exploded", Transient: true}}})
		select {
		case <-u.done:
			if attempt != 2 {
				t.Fatalf("unit finalized on attempt %d, want 2", attempt)
			}
			res, err := DecodeResult(u.wire, req)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err == nil || runner.IsTransient(res.Err) {
				t.Fatalf("exhausted unit error = %v, want permanent", res.Err)
			}
			return
		default:
			if attempt >= 2 {
				t.Fatal("unit not finalized after exhausting dispatch budget")
			}
		}
	}
}

func TestExternalSubmitBackpressure(t *testing.T) {
	reg := telemetry.NewRegistry()
	coord := NewCoordinator(CoordinatorOptions{QueueBound: 1, Registry: reg})
	defer coord.Close()

	if _, _, err := coord.SubmitExternal(testRequest(uarch.POWER10(), workloads.Compress(), 1)); err != nil {
		t.Fatal(err)
	}
	// Resubmitting the same point dedups instead of consuming queue space.
	if _, state, err := coord.SubmitExternal(testRequest(uarch.POWER10(), workloads.Compress(), 1)); err != nil || state != "pending" {
		t.Fatalf("dedup submit: state %q, err %v", state, err)
	}
	// A distinct point overflows the bound.
	_, _, err := coord.SubmitExternal(testRequest(uarch.POWER9(), workloads.Compress(), 1))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow submit err = %v, want ErrBusy", err)
	}
	if got := reg.Counter("fabric_submits_rejected_total").Value(); got != 1 {
		t.Errorf("fabric_submits_rejected_total = %d, want 1", got)
	}
}

func TestLostWorkerLeasesAreReclaimed(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 60 * time.Millisecond})
	defer coord.Close()
	reg, _ := coord.Register(RegisterRequest{Name: "doomed"})

	req := testRequest(uarch.POWER10(), workloads.Compress(), 1)
	payload, key, _ := EncodeRequest(req)
	if _, err := coord.enqueue(key, "test", payload, req, false); err != nil {
		t.Fatal(err)
	}
	if lease, _ := coord.Lease(context.Background(), reg.WorkerID, 1, 0); len(lease.Units) != 1 {
		t.Fatal("lease failed")
	}
	// No heartbeats: the sweeper must expire the lease, then declare the
	// worker lost after 2×TTL of silence.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fs := coord.Fleet()
		if fs.Queue.Requeues >= 1 && len(fs.Workers) == 1 && fs.Workers[0].State == "lost" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never declared lost: %+v", fs)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A lost worker's lease call is rejected so it re-registers.
	if _, err := coord.Lease(context.Background(), reg.WorkerID, 1, 0); err == nil {
		t.Fatal("lost worker leased without re-registering")
	}
}

func TestParseChaos(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want *WorkerChaos
		ok   bool
	}{
		{"", nil, true},
		{"kill:3", &WorkerChaos{Mode: "kill", After: 3}, true},
		{"stall", &WorkerChaos{Mode: "stall"}, true},
		{"corrupt:0", &WorkerChaos{Mode: "corrupt"}, true},
		{"explode:1", nil, false},
		{"kill:-1", nil, false},
		{"kill:x", nil, false},
	} {
		got, err := ParseChaos(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseChaos(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseChaos(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}
