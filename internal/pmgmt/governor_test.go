package pmgmt

import (
	"math"
	"testing"

	"power10sim/internal/power"
	"power10sim/internal/powermodel"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// analyticBoost solves dyn*s^3 + leak*s = budget for s, capped at fmax.
func analyticBoost(dyn, leak, budget, fmax float64) float64 {
	lo, hi := 0.0, fmax
	for i := 0; i < 60; i++ {
		s := (lo + hi) / 2
		if dyn*s*s*s+leak*s > budget {
			hi = s
		} else {
			lo = s
		}
	}
	return (lo + hi) / 2
}

func TestGovernorConvergesToAnalyticBoost(t *testing.T) {
	// Light workload: dyn 0.4, leak 0.06, budget 1.0: the analytic WOF
	// point solves 0.4 s^3 + 0.06 s = 1.0 -> s ~ 1.27.
	g := NewGovernor(1.0)
	s, err := g.SteadyStateScale(0.4, 0.06, 500)
	if err != nil {
		t.Fatal(err)
	}
	want := analyticBoost(0.4, 0.06, 1.0, g.FmaxScale)
	if math.Abs(s-want) > 0.08 {
		t.Errorf("governor settled at %.3f, analytic WOF %.3f", s, want)
	}
}

func TestGovernorHoldsBudgetOnHeavyLoad(t *testing.T) {
	g := NewGovernor(1.0)
	// Heavy workload at nominal already exceeds budget: the loop must
	// settle below nominal.
	s, err := g.SteadyStateScale(1.3, 0.1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1.0 {
		t.Errorf("governor settled at %.3f for an over-budget load", s)
	}
	proj := 1.3*s*s*s + 0.1*s
	if proj > 1.0*1.1 {
		t.Errorf("settled point projects %.3f, above budget", proj)
	}
}

func TestGovernorRespondsToPhaseChange(t *testing.T) {
	g := NewGovernor(1.0)
	// Long light phase then a heavy phase.
	var dyn []float64
	for i := 0; i < 80; i++ {
		dyn = append(dyn, 0.35)
	}
	for i := 0; i < 80; i++ {
		dyn = append(dyn, 1.25)
	}
	traj := g.Run(dyn, 0.06)
	lightEnd := traj[79]
	heavyEnd := traj[len(traj)-1]
	if lightEnd <= 1.05 {
		t.Errorf("light phase never boosted: %.3f", lightEnd)
	}
	if heavyEnd >= lightEnd-0.1 {
		t.Errorf("heavy phase did not back off: %.3f vs %.3f", heavyEnd, lightEnd)
	}
	projected := 1.25*heavyEnd*heavyEnd*heavyEnd + 0.06*heavyEnd
	if projected > 1.12 {
		t.Errorf("heavy steady point projects %.3f above budget", projected)
	}
}

func TestGovernorBounds(t *testing.T) {
	g := NewGovernor(10) // effectively unlimited budget
	for i := 0; i < 200; i++ {
		g.Step(0.01, 0.001)
	}
	if g.Scale() > g.FmaxScale {
		t.Errorf("scale %.3f above Fmax", g.Scale())
	}
	g2 := NewGovernor(0.001) // impossible budget
	for i := 0; i < 200; i++ {
		g2.Step(1.0, 0.1)
	}
	if g2.Scale() < g2.FminScale {
		t.Errorf("scale %.3f below Fmin", g2.Scale())
	}
}

func TestConverged(t *testing.T) {
	flat := []float64{1, 1, 1, 1, 1}
	if _, ok := Converged(flat, 5); !ok {
		t.Error("flat trajectory not converged")
	}
	ramp := []float64{0.5, 0.7, 0.9, 1.1, 1.3}
	if _, ok := Converged(ramp, 5); ok {
		t.Error("ramp trajectory converged")
	}
	if _, ok := Converged(flat, 10); ok {
		t.Error("short trajectory converged with long window")
	}
}

func TestGovernorOnRealEpochSeries(t *testing.T) {
	// Drive the loop with per-epoch dynamic power from a real workload run
	// and the 16-counter proxy as the sensor (the production configuration).
	cfg := uarch.POWER10()
	ds, err := powermodel.Collect(cfg, []*workloads.Workload{
		workloads.IntCompute(), workloads.Compress(), workloads.Stressmark(true),
	}, 2500)
	if err != nil {
		t.Fatal(err)
	}
	px, err := DesignProxy(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	var dyn []float64
	w := workloads.Compress()
	_, err = uarch.Simulate(cfg, []trace.Stream{trace.NewVMStream(w.Prog, w.Budget)},
		30_000_000, uarch.WithWarmup(w.Warmup),
		uarch.WithEpochs(2000, func(d uarch.Activity) {
			if d.Cycles > 0 {
				dyn = append(dyn, px.Estimate(d.Counters()))
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) < 10 {
		t.Fatalf("only %d epochs", len(dyn))
	}
	// Budget: the stressmark's power level — compress has headroom.
	_, stressRep := func() (*uarch.Activity, *power.Report) {
		sm := workloads.Stressmark(true)
		res, err := uarch.Simulate(cfg, []trace.Stream{trace.NewVMStream(sm.Prog, sm.Budget)},
			30_000_000, uarch.WithWarmup(sm.Warmup))
		if err != nil {
			t.Fatal(err)
		}
		return &res.Activity, power.NewModel(cfg).Report(&res.Activity)
	}()
	g := NewGovernor(stressRep.EffCap)
	traj := g.Run(dyn, stressRep.Leakage)
	final := traj[len(traj)-1]
	if final <= 1.02 {
		t.Errorf("governor found no WOF headroom on compress: %.3f", final)
	}
	if final > g.FmaxScale {
		t.Errorf("governor exceeded Fmax: %.3f", final)
	}
}
