// Package pmgmt implements the core power-management infrastructure of
// Section IV: Workload Optimized Frequency (WOF), fine- and coarse-grained
// core throttling with a Digital Droop Sensor, and the hardware Core Power
// Proxy whose counters are selected by the data-driven methodology shared
// with the M1-linked power models.
package pmgmt

import (
	"errors"
	"fmt"

	"power10sim/internal/mlfit"
	"power10sim/internal/power"
	"power10sim/internal/powermodel"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
)

// ---------------------------------------------------------------------------
// Workload Optimized Frequency (Section IV-A)
// ---------------------------------------------------------------------------

// WOF computes deterministic frequency boosts: workloads whose effective
// capacitance sits below the thermal/regulation design point (set by the
// power virus) run at a proportionally higher clock, identically on any two
// parts of the same sort.
type WOF struct {
	// EnvelopeDynamic is the design-point dynamic power (effective
	// capacitance at nominal V/F) from the stressmark characterization.
	EnvelopeDynamic float64
	// Leakage at nominal voltage.
	Leakage float64
	// FmaxScale caps the boost (sort-dependent silicon limit).
	FmaxScale float64
}

// NewWOF characterizes the envelope from the stressmark's power report.
func NewWOF(stressmark *power.Report) *WOF {
	return &WOF{
		EnvelopeDynamic: stressmark.EffCap,
		Leakage:         stressmark.Leakage,
		FmaxScale:       1.3,
	}
}

// Boost returns the deterministic frequency multiplier for a workload given
// its power report at nominal V/F. Dynamic power scales ~ s^3 (voltage
// tracks frequency) and leakage ~ s; the boost uses exactly the thermal
// headroom the workload's effective-capacitance ratio exposes.
func (w *WOF) Boost(rep *power.Report) float64 {
	budget := w.EnvelopeDynamic + w.Leakage
	dyn := rep.EffCap
	leak := rep.Leakage
	if dyn <= 0 {
		return w.FmaxScale
	}
	// Solve dyn*s^3 + leak*s = budget for s >= 1.
	lo, hi := 1.0, w.FmaxScale
	if dyn+leak >= budget {
		return 1
	}
	for i := 0; i < 50; i++ {
		s := (lo + hi) / 2
		if dyn*s*s*s+leak*s > budget {
			hi = s
		} else {
			lo = s
		}
	}
	s := (lo + hi) / 2
	if s > w.FmaxScale {
		s = w.FmaxScale
	}
	return s
}

// EffCapRatio is the workload-vs-design-point effective capacitance ratio
// that feeds the PFLY/CLY analysis.
func (w *WOF) EffCapRatio(rep *power.Report) float64 {
	if w.EnvelopeDynamic == 0 {
		return 0
	}
	return rep.EffCap / w.EnvelopeDynamic
}

// ---------------------------------------------------------------------------
// Core Power Proxy (Section IV-C, Fig. 15)
// ---------------------------------------------------------------------------

// Proxy is the synthesized hardware power proxy: a small set of counters
// with non-negative weights (hardware adders) estimating core active power.
type Proxy struct {
	Model    *mlfit.LinearModel
	Counters []string
	// ActiveError is the training active-power error in percent.
	ActiveError float64
}

// hardwareImplementable reports whether a counter can be built as a simple
// event counter in the core. The model-side features that require
// latch-level visibility (per-unit busy/clock-utilization fractions) or
// post-processing (IPC) are available to the software M1-linked models but
// not to the silicon proxy — the gap between Fig. 11's <2.5% and Fig.
// 15(a)'s ~9.8% floors.
func hardwareImplementable(name string) bool {
	if len(name) >= 5 && name[:5] == "busy_" {
		return false
	}
	switch name {
	case "ipc", "flush_insts", "wrongpath_slots":
		return false
	}
	return true
}

// DesignProxy selects up to nCounters inputs from the dataset under
// hardware implementation constraints (implementable event counters only,
// non-negative coefficients), mirroring the design-space exploration that
// produced the final 16-counter POWER10 proxy.
func DesignProxy(ds *powermodel.Dataset, nCounters int) (*Proxy, error) {
	if nCounters <= 0 {
		return nil, errors.New("pmgmt: proxy needs at least one counter")
	}
	// Strict non-negative greedy: grow the counter set one input at a
	// time, only accepting candidates whose addition keeps every weight
	// implementable (>= 0). This is how the final design ends up with the
	// full 16-counter budget populated rather than a pruned handful.
	X := ds.X()
	y := ds.ActiveY()
	opt := mlfit.Options{Intercept: true, NonNegative: true, Ridge: 1e-6}
	var chosen []int
	used := make(map[int]bool)
	var best *mlfit.LinearModel
	bestErr := 1e18
	for len(chosen) < nCounters {
		stepF, stepErr := -1, 1e18
		var stepModel *mlfit.LinearModel
		for f := range ds.Names {
			if used[f] || !hardwareImplementable(ds.Names[f]) {
				continue
			}
			cand := append(append([]int{}, chosen...), f)
			m, err := mlfit.FitColumns(X, y, cand, opt)
			if err != nil || len(m.Features) != len(cand) {
				continue // pruned: a weight went negative
			}
			e := mlfit.MeanAbsPctError(m, X, y)
			if e < stepErr {
				stepF, stepErr, stepModel = f, e, m
			}
		}
		if stepF < 0 {
			break // no candidate survives the constraint
		}
		chosen = append(chosen, stepF)
		used[stepF] = true
		if stepErr < bestErr {
			bestErr, best = stepErr, stepModel
		}
	}
	if best == nil {
		return nil, errors.New("pmgmt: no implementable counter set found")
	}
	p := &Proxy{Model: best, ActiveError: mlfit.MeanAbsPctError(best, X, y)}
	for _, f := range best.Features {
		p.Counters = append(p.Counters, ds.Names[f])
	}
	return p, nil
}

// Estimate returns the proxy's active-power estimate for a counter row.
func (p *Proxy) Estimate(counters []float64) float64 { return p.Model.Predict(counters) }

// AccuracyCurve produces Fig. 15(a): active-power error versus counter
// budget under the hardware constraints.
func AccuracyCurve(ds *powermodel.Dataset, budgets []int) (map[int]float64, error) {
	out := map[int]float64{}
	for _, n := range budgets {
		p, err := DesignProxy(ds, n)
		if err != nil {
			return nil, err
		}
		out[n] = p.ActiveError
	}
	return out, nil
}

// GranularityError produces Fig. 15(b): the proxy's total-power prediction
// error when read at different time granularities (cycles per prediction
// window). Short windows under-sample the counters' relationship to power.
func GranularityError(p *Proxy, cfg *uarch.Config, mk func() trace.Stream, windows []uint64, idleFloor float64) (map[uint64]float64, error) {
	model := power.NewModel(cfg)
	out := map[uint64]float64{}
	for _, win := range windows {
		var sumAbs, sumRef float64
		var n int
		cb := func(d uarch.Activity) {
			if d.Cycles == 0 {
				return
			}
			ref := model.Report(&d)
			est := p.Estimate(d.Counters()) + idleFloor
			diff := est - ref.Total
			if diff < 0 {
				diff = -diff
			}
			sumAbs += diff
			sumRef += ref.Total
			n++
		}
		_, err := uarch.Simulate(cfg, []trace.Stream{mk()}, 50_000_000,
			uarch.WithEpochs(win, cb))
		if err != nil {
			return nil, fmt.Errorf("pmgmt: window %d: %w", win, err)
		}
		if n == 0 || sumRef == 0 {
			return nil, fmt.Errorf("pmgmt: window %d produced no samples", win)
		}
		out[win] = sumAbs / sumRef * 100
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Throttling and the Digital Droop Sensor (Section IV-B)
// ---------------------------------------------------------------------------

// ThrottleLevel is a fine-grained instruction-rate limit, expressed as the
// effective decode width the dispatch throttle allows.
type ThrottleLevel struct {
	DecodeWidth int
	IPC         float64
	Power       float64
}

// FitThrottle finds the widest dispatch setting whose power stays within
// cap, simulating the workload at each level (the fixed-frequency /
// Fmin-mode fine-grained throttle). The proxy provides the fast power
// feedback of the adaptive control loop; the reference model plays the role
// of the (slow) truth the loop converges to.
func FitThrottle(cfg *uarch.Config, mk func() trace.Stream, cap float64, maxCycles uint64) (*ThrottleLevel, []ThrottleLevel, error) {
	var levels []ThrottleLevel
	var chosen *ThrottleLevel
	for w := cfg.DecodeWidth; w >= 1; w-- {
		c := *cfg
		c.DecodeWidth = w
		if c.RetireWidth > w {
			c.RetireWidth = w + 2
		}
		res, err := uarch.Simulate(&c, []trace.Stream{mk()}, maxCycles)
		if err != nil {
			return nil, nil, err
		}
		rep := power.NewModel(&c).Report(&res.Activity)
		lvl := ThrottleLevel{DecodeWidth: w, IPC: res.IPC(), Power: rep.Total}
		levels = append(levels, lvl)
		if lvl.Power <= cap && (chosen == nil || lvl.IPC > chosen.IPC) {
			l := lvl
			chosen = &l
		}
	}
	if chosen == nil {
		return nil, levels, errors.New("pmgmt: no throttle level satisfies the power cap")
	}
	return chosen, levels, nil
}

// DDS models the per-core Digital Droop Sensor: a sub-nanosecond timing
// margin monitor that engages the coarse throttle on voltage droops caused
// by abrupt current swings.
type DDS struct {
	// R and L model the power-delivery network's resistive and inductive
	// drops (arbitrary normalized units).
	R, L float64
	// MarginThreshold is the timing margin below which the sensor fires.
	MarginThreshold float64
	// ThrottleFactor is the current reduction the coarse throttle applies.
	ThrottleFactor float64
	// ReleaseAfter is how many samples the throttle holds.
	ReleaseAfter int
}

// DefaultDDS returns a droop sensor configured like the evaluation's.
func DefaultDDS() DDS {
	return DDS{R: 0.03, L: 0.10, MarginThreshold: 0.88, ThrottleFactor: 0.55, ReleaseAfter: 4}
}

// DroopReport summarizes a droop simulation.
type DroopReport struct {
	MinMargin      float64
	Violations     int // samples below the critical margin (0.82)
	SensorFirings  int
	ThrottledSlots int
	Samples        int
}

// criticalMargin is the margin below which circuits fail timing.
const criticalMargin = 0.82

// droopDecay is the per-sample decay of the inductive droop state: a
// current step rings the power-delivery network for several samples.
const droopDecay = 0.6

// SimulateDroop runs the voltage-margin model over a per-window current
// (dynamic power) series. The inductive term persists across samples, so a
// reactive sensor that throttles the cycles after a detected droop shortens
// the excursion. With the sensor disabled, no throttling occurs.
// releaseRamp is the per-sample throttle release step: the coarse throttle
// backs off gradually so the release itself does not re-droop the rail.
const releaseRamp = 0.12

func (d DDS) SimulateDroop(current []float64, sensorEnabled bool) DroopReport {
	rep := DroopReport{MinMargin: 1, Samples: len(current)}
	var prev, droop float64
	limit := 1.0
	hold := 0
	for _, iRaw := range current {
		if limit < 1 {
			rep.ThrottledSlots++
		}
		i := iRaw * limit
		di := i - prev
		droop = droop*droopDecay + di
		if droop < 0 {
			droop = 0
		}
		margin := 1 - d.R*i - d.L*droop
		prev = i
		if margin < rep.MinMargin {
			rep.MinMargin = margin
		}
		if margin < criticalMargin {
			rep.Violations++
		}
		if sensorEnabled && margin < d.MarginThreshold && hold == 0 && limit == 1 {
			rep.SensorFirings++
			limit = d.ThrottleFactor
			hold = d.ReleaseAfter
		} else if hold > 0 {
			hold--
		} else if limit < 1 {
			limit += releaseRamp
			if limit > 1 {
				limit = 1
			}
		}
	}
	return rep
}

// CurrentSeries derives a normalized per-window current series from a
// workload run (dynamic power as the current proxy).
func CurrentSeries(cfg *uarch.Config, mk func() trace.Stream, window uint64, maxCycles uint64) ([]float64, error) {
	model := power.NewModel(cfg)
	var out []float64
	cb := func(d uarch.Activity) {
		if d.Cycles == 0 {
			return
		}
		out = append(out, model.Report(&d).EffCap)
	}
	if _, err := uarch.Simulate(cfg, []trace.Stream{mk()}, maxCycles, uarch.WithEpochs(window, cb)); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// MMA power gate control (Section IV-A)
// ---------------------------------------------------------------------------

// MMAGate models the firmware-controlled MMA power gate with proactive
// wake hints.
type MMAGate struct {
	// IdleBeforeOff is how long the MMA must be idle before gating.
	IdleBeforeOff uint64
	// WakeLatency is the power-on delay without a hint.
	WakeLatency uint64
}

// GateReport summarizes gate behaviour over an activity window series.
type GateReport struct {
	GatedWindows  int
	ActiveWindows int
	WakeStalls    uint64 // cycles lost waking without hints
}

// Evaluate replays MMA activity windows through the gate policy. hinted
// marks windows preceded by a wake hint (OpMMAWake), which hides the wake
// latency.
func (g MMAGate) Evaluate(mmaActive []bool, hinted []bool) GateReport {
	var rep GateReport
	idle := g.IdleBeforeOff // start gated
	for i, active := range mmaActive {
		if active {
			rep.ActiveWindows++
			if idle >= g.IdleBeforeOff {
				// Unit was gated; waking costs latency unless hinted.
				if i >= len(hinted) || !hinted[i] {
					rep.WakeStalls += g.WakeLatency
				}
			}
			idle = 0
		} else {
			idle++
			if idle >= g.IdleBeforeOff {
				rep.GatedWindows++
			}
		}
	}
	return rep
}
