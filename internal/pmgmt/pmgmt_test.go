package pmgmt

import (
	"testing"

	"power10sim/internal/power"
	"power10sim/internal/powermodel"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

func report(t *testing.T, cfg *uarch.Config, w *workloads.Workload) *power.Report {
	t.Helper()
	res, err := uarch.Simulate(cfg, []trace.Stream{trace.NewVMStream(w.Prog, w.Budget)},
		30_000_000, uarch.WithWarmup(w.Warmup))
	if err != nil {
		t.Fatal(err)
	}
	return power.NewModel(cfg).Report(&res.Activity)
}

func TestWOFBoostsLightWorkloads(t *testing.T) {
	cfg := uarch.POWER10()
	wof := NewWOF(report(t, cfg, workloads.Stressmark(true)))
	stressBoost := wof.Boost(report(t, cfg, workloads.Stressmark(true)))
	if stressBoost > 1.001 {
		t.Errorf("stressmark boosted %.3fx; the design point must not boost", stressBoost)
	}
	lightBoost := wof.Boost(report(t, cfg, workloads.GraphOpt()))
	if lightBoost < 1.05 {
		t.Errorf("memory-bound workload boost %.3fx, want > 1.05", lightBoost)
	}
	if lightBoost > wof.FmaxScale {
		t.Errorf("boost %.3f exceeds Fmax cap", lightBoost)
	}
	midBoost := wof.Boost(report(t, cfg, workloads.Compress()))
	if midBoost <= 1.0 || midBoost > lightBoost {
		t.Errorf("mid workload boost %.3f not between 1 and %.3f", midBoost, lightBoost)
	}
}

func TestWOFIsDeterministic(t *testing.T) {
	// The paper stresses determinism: same workload, same sort => same
	// boost. Two independent runs must agree exactly.
	cfg := uarch.POWER10()
	wof := NewWOF(report(t, cfg, workloads.Stressmark(true)))
	b1 := wof.Boost(report(t, cfg, workloads.XMLTrans()))
	b2 := wof.Boost(report(t, cfg, workloads.XMLTrans()))
	if b1 != b2 {
		t.Errorf("boost not deterministic: %v vs %v", b1, b2)
	}
}

func TestMMAGatingIncreasesWOFHeadroom(t *testing.T) {
	// Section IV-A: the power-gated MMA's reclaimed leakage becomes boost.
	cfg := uarch.POWER10()
	wof := NewWOF(report(t, cfg, workloads.Stressmark(true)))
	rep := report(t, cfg, workloads.IntCompute())
	gated := wof.Boost(rep)
	// Same workload with the MMA forced on (no gating).
	repOn := *rep
	repOn.Leakage += 0.02 // ungated MMA leakage
	repOn.Total += 0.02
	on := wof.Boost(&repOn)
	if gated <= on {
		t.Errorf("gated boost %.4f <= ungated %.4f", gated, on)
	}
}

func proxyDataset(t *testing.T) *powermodel.Dataset {
	t.Helper()
	ws := []*workloads.Workload{
		workloads.IntCompute(), workloads.Compress(), workloads.MediaVec(),
		workloads.BoardEval(), workloads.XMLTrans(), workloads.Stressmark(true),
	}
	ds, err := powermodel.Collect(uarch.POWER10(), ws, 2500)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestProxyDesignSixteenCounters(t *testing.T) {
	ds := proxyDataset(t)
	p, err := DesignProxy(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Counters) > 16 {
		t.Errorf("proxy uses %d counters, cap is 16", len(p.Counters))
	}
	// Hardware constraint: all weights non-negative.
	for i, c := range p.Model.Coef {
		if c < 0 {
			t.Errorf("counter %s has negative weight %v", p.Counters[i], c)
		}
	}
	// Paper: ~9.8% active-power error for the 16-counter design.
	if p.ActiveError > 15 {
		t.Errorf("16-counter proxy active error %.1f%%", p.ActiveError)
	}
}

func TestProxyAccuracyCurveShape(t *testing.T) {
	ds := proxyDataset(t)
	curve, err := AccuracyCurve(ds, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if curve[2] < curve[16] {
		t.Errorf("Fig 15a shape violated: 2 counters %.1f%% < 16 counters %.1f%%", curve[2], curve[16])
	}
}

func TestGranularityErrorShape(t *testing.T) {
	// Fig. 15(b): near-best accuracy at >= 50-cycle windows, rapidly
	// degrading below.
	ds := proxyDataset(t)
	p, err := DesignProxy(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.Compress()
	mk := func() trace.Stream { return trace.NewVMStream(w.Prog, w.Budget) }
	errs, err := GranularityError(p, uarch.POWER10(), mk, []uint64{10, 50, 500, 5000}, ds.IdleFloor)
	if err != nil {
		t.Fatal(err)
	}
	if errs[10] <= errs[500] {
		t.Errorf("10-cycle windows error %.1f%% <= 500-cycle %.1f%%", errs[10], errs[500])
	}
	if errs[5000] > 20 {
		t.Errorf("coarse-window error %.1f%% too high", errs[5000])
	}
}

func TestFitThrottleRespectsCap(t *testing.T) {
	cfg := uarch.POWER10()
	w := workloads.IntCompute()
	mk := func() trace.Stream { return trace.NewVMStream(w.Prog, 40_000) }
	full, err := uarch.Simulate(cfg, []trace.Stream{mk()}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	fullPower := power.NewModel(cfg).Report(&full.Activity).Total
	cap := fullPower * 0.8
	chosen, levels, err := FitThrottle(cfg, mk, cap, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Power > cap {
		t.Errorf("chosen level power %.3f exceeds cap %.3f", chosen.Power, cap)
	}
	if chosen.DecodeWidth >= cfg.DecodeWidth {
		t.Errorf("cap below full power but throttle kept full width")
	}
	if len(levels) != cfg.DecodeWidth {
		t.Errorf("%d levels explored", len(levels))
	}
	// Narrower width, lower power: monotone trend at the extremes.
	if levels[0].Power <= levels[len(levels)-1].Power {
		t.Errorf("throttling did not reduce power: %.3f -> %.3f",
			levels[0].Power, levels[len(levels)-1].Power)
	}
}

func TestFitThrottleImpossibleCap(t *testing.T) {
	cfg := uarch.POWER10()
	w := workloads.IntCompute()
	mk := func() trace.Stream { return trace.NewVMStream(w.Prog, 20_000) }
	if _, _, err := FitThrottle(cfg, mk, 0.001, 10_000_000); err == nil {
		t.Error("impossible cap satisfied")
	}
}

func TestDDSProtectsMargin(t *testing.T) {
	// A current step (sudden workload change) droops the rail; the sensor
	// must catch it and hold margin above critical.
	series := make([]float64, 200)
	for i := range series {
		if i < 100 {
			series[i] = 0.3
		} else {
			series[i] = 2.4 // abrupt activity step
		}
	}
	dds := DefaultDDS()
	without := dds.SimulateDroop(series, false)
	with := dds.SimulateDroop(series, true)
	if without.Violations == 0 {
		t.Fatal("test stimulus causes no droop violations")
	}
	if with.Violations >= without.Violations {
		t.Errorf("DDS did not reduce violations: %d vs %d", with.Violations, without.Violations)
	}
	// The initial dip is physical; the sensor must not make anything worse.
	if with.MinMargin < without.MinMargin {
		t.Errorf("DDS min margin %.3f < unprotected %.3f", with.MinMargin, without.MinMargin)
	}
	if with.SensorFirings == 0 || with.ThrottledSlots == 0 {
		t.Error("sensor never fired")
	}
}

func TestDDSQuietWorkloadUntouched(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = 0.5
	}
	rep := DefaultDDS().SimulateDroop(series, true)
	if rep.SensorFirings != 0 || rep.ThrottledSlots != 0 {
		t.Error("sensor fired on steady current")
	}
	if rep.Violations != 0 {
		t.Error("steady current violated margin")
	}
}

func TestDroopSeriesFromWorkload(t *testing.T) {
	cfg := uarch.POWER10()
	w := workloads.Compress()
	mk := func() trace.Stream { return trace.NewVMStream(w.Prog, 60_000) }
	series, err := CurrentSeries(cfg, mk, 500, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 10 {
		t.Fatalf("only %d current samples", len(series))
	}
	rep := DefaultDDS().SimulateDroop(series, true)
	if rep.Samples != len(series) {
		t.Error("sample count mismatch")
	}
}

func TestMMAGateHintsHideWakeLatency(t *testing.T) {
	g := MMAGate{IdleBeforeOff: 3, WakeLatency: 50}
	active := []bool{false, false, false, false, true, false, false, false, false, true}
	noHints := make([]bool, len(active))
	rep := g.Evaluate(active, noHints)
	if rep.WakeStalls != 100 {
		t.Errorf("wake stalls %d, want 100 (two cold wakes)", rep.WakeStalls)
	}
	hints := make([]bool, len(active))
	hints[4], hints[9] = true, true
	rep = g.Evaluate(active, hints)
	if rep.WakeStalls != 0 {
		t.Errorf("hinted wake stalls %d, want 0", rep.WakeStalls)
	}
	if rep.GatedWindows == 0 {
		t.Error("gate never engaged")
	}
}
