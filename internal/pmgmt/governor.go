package pmgmt

import "errors"

// Governor is the firmware frequency-control loop of Section IV-A: every
// control interval it reads the Core Power Proxy, compares the estimate
// against the socket budget, and steps the frequency (and tracking voltage)
// toward the highest operating point that fits — WOF as a closed loop
// rather than a table. Power-proxy feedback makes the loop converge in a
// handful of intervals ("faster learning, yielding more efficient adaptive
// control loops").
type Governor struct {
	// Budget is the power envelope the loop regulates to.
	Budget float64
	// FminScale/FmaxScale bound the frequency lever.
	FminScale, FmaxScale float64
	// StepUp/StepDown are the per-interval frequency moves. Down-steps are
	// larger: overshooting the envelope risks droop and thermal excursion.
	StepUp, StepDown float64
	// Guard is the fraction of budget headroom the loop keeps in reserve.
	Guard float64

	scale float64
}

// NewGovernor returns a WOF control loop at nominal frequency.
func NewGovernor(budget float64) *Governor {
	return &Governor{
		Budget:    budget,
		FminScale: 0.5,
		FmaxScale: 1.3,
		StepUp:    0.02,
		StepDown:  0.05,
		Guard:     0.02,
		scale:     1.0,
	}
}

// Scale returns the current frequency scale.
func (g *Governor) Scale() float64 { return g.scale }

// Step consumes one control interval's power estimate measured at NOMINAL
// frequency (the proxy's counters are frequency-normalized) and moves the
// operating point. It returns the new scale.
func (g *Governor) Step(dynAtNominal, leakAtNominal float64) float64 {
	// Projected power at the present operating point.
	projected := dynAtNominal*g.scale*g.scale*g.scale + leakAtNominal*g.scale
	switch {
	case projected > g.Budget:
		g.scale -= g.StepDown
	case projected < g.Budget*(1-g.Guard):
		g.scale += g.StepUp
	}
	if g.scale > g.FmaxScale {
		g.scale = g.FmaxScale
	}
	if g.scale < g.FminScale {
		g.scale = g.FminScale
	}
	return g.scale
}

// Run drives the loop over a series of per-interval (dynamic, leakage)
// estimates and returns the scale trajectory.
func (g *Governor) Run(dyn []float64, leak float64) []float64 {
	out := make([]float64, len(dyn))
	for i, d := range dyn {
		out[i] = g.Step(d, leak)
	}
	return out
}

// Converged reports whether the last window of a trajectory settled within
// one up-step of band.
func Converged(traj []float64, window int) (float64, bool) {
	if len(traj) < window || window <= 0 {
		return 0, false
	}
	tail := traj[len(traj)-window:]
	lo, hi := tail[0], tail[0]
	for _, v := range tail {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	mid := (lo + hi) / 2
	return mid, hi-lo <= 0.08
}

// SteadyStateScale runs the loop to convergence on a constant load and
// returns the settled operating point.
func (g *Governor) SteadyStateScale(dynAtNominal, leakAtNominal float64, maxIters int) (float64, error) {
	var traj []float64
	for i := 0; i < maxIters; i++ {
		traj = append(traj, g.Step(dynAtNominal, leakAtNominal))
		if len(traj) >= 10 {
			if mid, ok := Converged(traj, 10); ok && i > 20 {
				return mid, nil
			}
		}
	}
	return 0, errors.New("pmgmt: governor did not converge")
}
