package microprobe

import (
	"testing"

	"power10sim/internal/trace"
	"power10sim/internal/uarch"
)

func TestGenerateNaming(t *testing.T) {
	cases := map[string]Params{
		"st_dd0_zero":     {SMT: 1, DepDistance: 0, Data: InitZero},
		"st_dd1_random":   {SMT: 1, DepDistance: 1, Data: InitRandom},
		"smt2_dd0_random": {SMT: 2, DepDistance: 0, Data: InitRandom},
		"smt4_dd1_zero":   {SMT: 4, DepDistance: 1, Data: InitZero},
	}
	for want, p := range cases {
		tc, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		if tc.Name != want {
			t.Errorf("name %q, want %q", tc.Name, want)
		}
	}
}

func TestGenerateRejectsBadDD(t *testing.T) {
	if _, err := Generate(Params{DepDistance: 3}); err == nil {
		t.Error("dd3 accepted")
	}
}

func TestDataToggleHints(t *testing.T) {
	z, err := Generate(Params{Data: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Generate(Params{Data: InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	if z.DataToggle >= r.DataToggle {
		t.Errorf("zero-init toggle %.2f >= random %.2f", z.DataToggle, r.DataToggle)
	}
}

func TestDependencyDistanceAffectsILP(t *testing.T) {
	run := func(dd int) float64 {
		tc, err := Generate(Params{SMT: 1, DepDistance: dd, Data: InitRandom})
		if err != nil {
			t.Fatal(err)
		}
		res, err := uarch.Simulate(uarch.POWER10(),
			[]trace.Stream{trace.NewVMStream(tc.Workload.Prog, tc.Workload.Budget)}, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC()
	}
	indep := run(0)
	serial := run(1)
	if serial >= indep {
		t.Errorf("serial-dependency IPC %.2f >= independent %.2f", serial, indep)
	}
}

func TestFig13SuiteComplete(t *testing.T) {
	suite, err := Fig13Suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 12 {
		t.Fatalf("suite has %d cases, want 12 (3 SMT x 2 DD x 2 data)", len(suite))
	}
	seen := map[string]bool{}
	for _, tc := range suite {
		if seen[tc.Name] {
			t.Errorf("duplicate case %s", tc.Name)
		}
		seen[tc.Name] = true
		if err := tc.Workload.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
	}
}
