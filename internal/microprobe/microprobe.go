// Package microprobe is the synthetic-testcase generator analog ([8] in the
// paper): it produces parametric microbenchmarks sweeping SMT level,
// dependency distance (DD) and data initialization (zero/random) — the
// testcase suites SERMiner's derating study (Fig. 13) runs, alongside
// maximum-power stressmarks and unit-targeted probes.
package microprobe

import (
	"fmt"

	"power10sim/internal/isa"
	"power10sim/internal/workloads"
)

// DataInit selects operand data content.
type DataInit int

// Data initialization modes.
const (
	InitZero DataInit = iota
	InitRandom
)

func (d DataInit) String() string {
	if d == InitZero {
		return "zero"
	}
	return "random"
}

// Params parameterizes one synthetic testcase.
type Params struct {
	SMT int // hardware threads the case is meant to run with (1, 2, 4)
	// DepDistance: 0 = fully independent operations; 1 = serial dependency
	// on the previous instruction.
	DepDistance int
	Data        DataInit
	// BodyOps is the loop body size before control overhead.
	BodyOps int
	Iters   int
}

// TestCase couples the generated workload with the switching hints the
// latch-level analysis needs.
type TestCase struct {
	Name string
	Params
	Workload *workloads.Workload
	// DataToggle approximates the datapath toggle probability implied by
	// the operand values (zero data leaves most datapath latches inert).
	DataToggle float64
}

// Generate builds the testcase for the given parameters.
func Generate(p Params) (*TestCase, error) {
	if p.DepDistance < 0 || p.DepDistance > 1 {
		return nil, fmt.Errorf("microprobe: dependency distance %d unsupported", p.DepDistance)
	}
	if p.BodyOps <= 0 {
		p.BodyOps = 24
	}
	if p.Iters <= 0 {
		p.Iters = 2500
	}
	name := fmt.Sprintf("%s_dd%d_%s", smtName(p.SMT), p.DepDistance, p.Data)
	b := isa.NewBuilder(name)
	rI := isa.GPR(1)
	rL := isa.GPR(2)
	b.Li(rI, 0)
	b.Li(rL, int64(p.Iters))
	seed := int64(0)
	if p.Data == InitRandom {
		seed = 0x5DEECE66D
	}
	// Seed the working registers.
	for r := 8; r < 24; r++ {
		b.SetGPR(r, uint64(seed)*uint64(r))
	}
	b.Label("top")
	for op := 0; op < p.BodyOps; op++ {
		dst := isa.GPR(8 + op%16)
		src := dst
		if p.DepDistance == 1 {
			// Serial: consume the previous op's destination.
			src = isa.GPR(8 + (op+15)%16)
		}
		switch op % 4 {
		case 0, 1:
			b.Add(dst, src, isa.GPR(8+(op+5)%16))
		case 2:
			b.Xor(dst, src, isa.GPR(8+(op+7)%16))
		case 3:
			b.Shl(dst, src, int64(op%13))
		}
	}
	b.Addi(rI, rI, 1)
	b.Bc(isa.CondLT, rI, rL, "top")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	toggle := 0.08
	if p.Data == InitRandom {
		toggle = 0.50
	}
	w := &workloads.Workload{
		Name:     name,
		Category: workloads.CatSynthetic,
		Prog:     prog,
		Weight:   1,
		Budget:   uint64(p.Iters) * uint64(p.BodyOps+2),
	}
	return &TestCase{Name: name, Params: p, Workload: w, DataToggle: toggle}, nil
}

func smtName(smt int) string {
	switch smt {
	case 0, 1:
		return "st"
	default:
		return fmt.Sprintf("smt%d", smt)
	}
}

// Fig13Suite returns the testcase sweep of Fig. 13: ST/SMT2/SMT4 x DD0/DD1 x
// zero/random, in the paper's x-axis order (SPEC-proxy entries are appended
// by the experiment harness, which owns the SPEC workloads).
func Fig13Suite() ([]*TestCase, error) {
	var out []*TestCase
	for _, smt := range []int{1, 2, 4} {
		for _, dd := range []int{0, 1} {
			for _, di := range []DataInit{InitRandom, InitZero} {
				tc, err := Generate(Params{SMT: smt, DepDistance: dd, Data: di})
				if err != nil {
					return nil, err
				}
				out = append(out, tc)
			}
		}
	}
	return out, nil
}
