package sampling

import "math"

// This file is the stdlib-only clustering stage: seeded k-means++ with Lloyd
// iterations, run for every k in [1, MaxK], scored with the spherical-
// Gaussian BIC used by x-means. Everything is deterministic: initialization
// draws from an LCG seeded by Spec.Seed, assignment ties break on the lowest
// cluster index, and the representative pick breaks ties on the lowest
// interval index — so the same trace and spec always produce the same plan.

// maxLloydIters bounds the refinement loop; the interval counts here (tens
// to low thousands) converge in a handful of iterations.
const maxLloydIters = 64

// cluster picks k by BIC, assigns intervals, and selects representatives.
func (p *Plan) cluster() {
	n := len(p.Intervals)
	maxK := p.Spec.MaxK
	if maxK > n {
		maxK = n
	}
	type solution struct {
		assign []int
		cents  [][]float64
		sse    float64
		bic    float64
	}
	var best *solution
	for k := 1; k <= maxK; k++ {
		assign, cents, sse := p.kmeans(k)
		bic := bicScore(p.Intervals, assign, k, sse)
		if best == nil || bic > best.bic {
			best = &solution{assign: assign, cents: cents, sse: sse, bic: bic}
		}
	}
	p.SSE = best.sse
	k := len(best.cents)
	p.Clusters = make([]Cluster, k)
	for i := range p.Intervals {
		iv := &p.Intervals[i]
		c := best.assign[i]
		iv.Cluster = c
		p.Clusters[c].Members++
		p.Clusters[c].Insts += iv.Insts()
	}
	// Representative: the member closest to its centroid (lowest index wins
	// ties). Weight: the cluster's instruction share of the whole trace.
	repDist := make([]float64, k)
	for c := range p.Clusters {
		p.Clusters[c].Rep = -1
		repDist[c] = math.Inf(1)
		p.Clusters[c].Weight = float64(p.Clusters[c].Insts) / float64(p.TotalInsts)
	}
	members := make([][]int, k)
	for i := range p.Intervals {
		c := p.Intervals[i].Cluster
		members[c] = append(members[c], i)
		d := sqDist(p.Intervals[i].features, best.cents[c])
		if d < repDist[c] {
			repDist[c] = d
			p.Clusters[c].Rep = i
		}
	}
	// Reps: each cluster's members in sampling order — a deterministic
	// shuffle, so any prefix is a simple random sample of the phase. The
	// engine simulates the first RepsPerCluster and extends adaptively until
	// its confidence target is met; random order (rather than "closest to
	// centroid first") keeps every prefix unbiased where the centroid pick
	// alone would oversample the phase's densest sub-behavior.
	for c := range p.Clusters {
		order := append([]int(nil), members[c]...)
		rng := lcg{s: mix64(p.Spec.Seed ^ uint64(c)*0x9E3779B97F4A7C15)}
		for i := len(order) - 1; i > 0; i-- {
			j := rng.intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		p.Clusters[c].Reps = order
	}
}

// kmeans runs one seeded k-means++ clustering at a fixed k and returns the
// assignment, centroids and SSE.
func (p *Plan) kmeans(k int) ([]int, [][]float64, float64) {
	n := len(p.Intervals)
	dim := len(p.Intervals[0].features)
	rng := lcg{s: mix64(p.Spec.Seed ^ uint64(k)<<32)}

	// k-means++ initialization: first center from the LCG, each subsequent
	// center drawn with probability proportional to squared distance.
	cents := make([][]float64, 0, k)
	cents = append(cents, clone(p.Intervals[rng.intn(n)].features))
	d2 := make([]float64, n)
	for len(cents) < k {
		var sum float64
		for i := range p.Intervals {
			d2[i] = p.nearestSq(i, cents)
			sum += d2[i]
		}
		if sum == 0 {
			// All remaining points coincide with existing centers: further
			// centers are duplicates and Lloyd will empty them out.
			cents = append(cents, clone(cents[0]))
			continue
		}
		target := rng.float() * sum
		pick := n - 1
		var run float64
		for i := range d2 {
			run += d2[i]
			if run >= target {
				pick = i
				break
			}
		}
		cents = append(cents, clone(p.Intervals[pick].features))
	}

	assign := make([]int, n)
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	var sse float64
	for iter := 0; iter < maxLloydIters; iter++ {
		sse = 0
		changed := false
		for i := range p.Intervals {
			bestC, bestD := 0, math.Inf(1)
			for c := range cents {
				if d := sqDist(p.Intervals[i].features, cents[c]); d < bestD {
					bestC, bestD = c, d
				}
			}
			assign[i] = bestC
			sse += bestD
			if prev[i] != bestC {
				changed = true
				prev[i] = bestC
			}
		}
		if !changed {
			break
		}
		// Recompute centroids; an emptied cluster keeps its old centroid.
		counts := make([]int, len(cents))
		next := make([][]float64, len(cents))
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i := range p.Intervals {
			c := assign[i]
			counts[c]++
			for j, v := range p.Intervals[i].features {
				next[c][j] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				copy(next[c], cents[c])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range next[c] {
				next[c][j] *= inv
			}
		}
		cents = next
	}
	// Drop emptied clusters so downstream weights never divide by zero;
	// reindex assignments compactly in first-appearance order.
	counts := make([]int, len(cents))
	for _, c := range assign {
		counts[c]++
	}
	remap := make([]int, len(cents))
	var live [][]float64
	for c := range cents {
		if counts[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(live)
		live = append(live, cents[c])
	}
	for i := range assign {
		assign[i] = remap[assign[i]]
	}
	return assign, live, sse
}

// nearestSq returns the squared distance from interval i to its nearest
// existing center.
func (p *Plan) nearestSq(i int, cents [][]float64) float64 {
	best := math.Inf(1)
	for _, c := range cents {
		if d := sqDist(p.Intervals[i].features, c); d < best {
			best = d
		}
	}
	return best
}

// bicScore is the spherical-Gaussian Bayesian information criterion
// (x-means form): log-likelihood of the clustering under a shared-variance
// Gaussian per cluster, penalized by the parameter count. Higher is better.
// A zero-variance (perfect) clustering scores +Inf at the smallest k that
// achieves it, which is exactly the SimPoint-style preference for the
// smallest faithful phase count.
func bicScore(ivs []Interval, assign []int, k int, sse float64) float64 {
	n := float64(len(ivs))
	if len(ivs) == 0 {
		return math.Inf(-1)
	}
	dim := float64(len(ivs[0].features))
	if n <= float64(k) {
		// As many clusters as points: perfectly overfit; only preferable
		// when no smaller k explains the data (sse on smaller k > 0).
		if sse == 0 {
			return math.Inf(-1)
		}
	}
	variance := sse / (dim * math.Max(n-float64(k), 1))
	if variance <= 0 {
		// Perfect fit: +Inf. The k loop ascends and replaces only on a
		// strictly better score, so the smallest perfect k wins.
		return math.Inf(1)
	}
	counts := make([]float64, k)
	for _, c := range assign {
		counts[c]++
	}
	var loglik float64
	for _, nc := range counts {
		if nc > 0 {
			loglik += nc * math.Log(nc/n)
		}
	}
	loglik -= n * dim / 2 * math.Log(2*math.Pi*variance)
	loglik -= dim * (n - float64(k)) / 2
	params := float64(k) * (dim + 1)
	return loglik - params/2*math.Log(n)
}

// sqDist is the squared Euclidean distance.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clone(v []float64) []float64 { return append([]float64(nil), v...) }

// lcg is the deterministic pseudo-random source for k-means++ init.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return mix64(l.s)
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

func (l *lcg) float() float64 { return float64(l.next()>>11) / (1 << 53) }
