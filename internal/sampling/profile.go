package sampling

import (
	"fmt"

	"power10sim/internal/isa"
	"power10sim/internal/trace"
)

// ProfileLen is the length of the vector Profile returns: the instruction
// class mix plus the line and page first-touch rates.
const ProfileLen = isa.NumClasses + 2

// Profile functionally executes prog for up to budget instructions (the same
// cheap untimed pass BuildPlan's featurizer makes) and renders one
// whole-trace behavior vector: the instruction-class mix (isa.NumClasses
// fractions summing to 1) followed by the per-instruction first-touch rates
// for 64B cache lines and 4KiB pages. This is the workload half of the
// surrogate's feature row — a pure, deterministic function of the program,
// independent of any core configuration, so one profile is shared by every
// (config, SMT) point that runs the workload.
func Profile(prog *isa.Program, budget uint64) ([]float64, error) {
	stream := trace.NewVMStream(prog, budget)
	var (
		byClass  [isa.NumClasses]uint64
		newLines uint64
		newPages uint64
		insts    uint64
	)
	seenLines := make(map[uint64]struct{})
	seenPages := make(map[uint64]struct{})
	for {
		d, ok := stream.Next()
		if !ok {
			break
		}
		cls := prog.Code[d.Idx].Class()
		byClass[cls]++
		if cls.IsMem() {
			if line := d.EA / lineBytes; !member(seenLines, line) {
				newLines++
			}
			if page := d.EA / pageBytes; !member(seenPages, page) {
				newPages++
			}
		}
		insts++
	}
	if err := stream.Err(); err != nil {
		return nil, fmt.Errorf("sampling: profile pass: %w", err)
	}
	if insts == 0 {
		return nil, fmt.Errorf("sampling: empty dynamic trace")
	}
	out := make([]float64, ProfileLen)
	inv := 1 / float64(insts)
	for i, v := range byClass {
		out[i] = float64(v) * inv
	}
	out[isa.NumClasses] = float64(newLines) * inv
	out[isa.NumClasses+1] = float64(newPages) * inv
	return out, nil
}
