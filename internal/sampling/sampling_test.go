package sampling

import (
	"math"
	"reflect"
	"testing"

	"power10sim/internal/power"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// TestFlattenRoundTrip pins flatten/unflatten against the Activity struct via
// reflection: every uint64 leaf must be covered exactly once, so a field
// added to Activity without extending the pair fails here instead of silently
// dropping out of the extrapolation.
func TestFlattenRoundTrip(t *testing.T) {
	var a uarch.Activity
	leaves := 0
	v := reflect.ValueOf(&a).Elem()
	next := uint64(1)
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(next)
			next++
			leaves++
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(next)
				next++
				leaves++
			}
		default:
			t.Fatalf("Activity field %s has unexpected kind %s", v.Type().Field(i).Name, f.Kind())
		}
	}
	if leaves != activityFields {
		t.Fatalf("Activity has %d uint64 leaves, activityFields = %d", leaves, activityFields)
	}
	var buf [activityFields]uint64
	flatten(&a, &buf)
	seen := map[uint64]bool{}
	for _, x := range buf {
		if x == 0 || seen[x] {
			t.Fatalf("flatten dropped or duplicated a field (value %d)", x)
		}
		seen[x] = true
	}
	var back uarch.Activity
	unflatten(&buf, &back)
	if back != a {
		t.Fatal("unflatten(flatten(a)) != a")
	}
}

// TestExtrapolatorScales checks weighted accumulation and rounding.
func TestExtrapolatorScales(t *testing.T) {
	var a uarch.Activity
	a.Cycles = 100
	a.Instructions = 50
	a.Flops = 7
	var e extrapolator
	e.add(&a, 1.5)
	e.add(&a, 0.5)
	got := e.round()
	if got.Cycles != 200 || got.Instructions != 100 || got.Flops != 14 {
		t.Fatalf("got cycles=%d insts=%d flops=%d, want 200/100/14",
			got.Cycles, got.Instructions, got.Flops)
	}
}

func TestStratifiedCI(t *testing.T) {
	// Constant samples: exact mean, zero uncertainty.
	mean, half := stratifiedCI([]stratum{{weight: 1, total: 10, xs: []float64{2, 2, 2}}})
	if mean != 2 || half != 0 {
		t.Fatalf("constant metrics: mean=%v half=%v, want 2, 0", mean, half)
	}
	// Dispersed samples from a partially covered stratum: positive CI.
	mean, half = stratifiedCI([]stratum{{weight: 1, total: 10, xs: []float64{1, 3}}})
	if math.Abs(mean-2) > 1e-12 || half <= 0 {
		t.Fatalf("dispersed metrics: mean=%v half=%v, want mean 2 and half > 0", mean, half)
	}
	// Full coverage: finite-population correction zeroes the uncertainty
	// even with dispersed samples.
	if _, h := stratifiedCI([]stratum{{weight: 1, total: 2, xs: []float64{1, 3}}}); h != 0 {
		t.Fatalf("fully simulated stratum must report zero half-width, got %v", h)
	}
	// Single-sample stratum: no estimable dispersion.
	if _, h := stratifiedCI([]stratum{{weight: 1, total: 5, xs: []float64{5}}}); h != 0 {
		t.Fatalf("single sample must report zero half-width, got %v", h)
	}
	// Two strata combine by weight.
	mean, _ = stratifiedCI([]stratum{
		{weight: 0.75, total: 4, xs: []float64{4}},
		{weight: 0.25, total: 4, xs: []float64{8}},
	})
	if math.Abs(mean-5) > 1e-12 {
		t.Fatalf("weighted combination: mean=%v, want 5", mean)
	}
}

// TestBuildPlanDeterministic: same trace + spec => identical plan.
func TestBuildPlanDeterministic(t *testing.T) {
	w := workloads.Daxpy(512, 8)
	a, err := BuildPlan(w.Prog, w.Budget, DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(w.Prog, w.Budget, DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BuildPlan is not deterministic")
	}
	if a.K() < 1 || a.K() > a.Spec.MaxK {
		t.Fatalf("k = %d outside [1, %d]", a.K(), a.Spec.MaxK)
	}
	var insts uint64
	for _, c := range a.Clusters {
		insts += c.Insts
		rep := a.Intervals[c.Rep]
		if rep.Cluster < 0 || rep.Cluster >= a.K() {
			t.Fatalf("representative %d assigned to cluster %d of %d", c.Rep, rep.Cluster, a.K())
		}
	}
	if insts != a.TotalInsts {
		t.Fatalf("cluster insts sum %d != trace length %d", insts, a.TotalInsts)
	}
}

func TestBuildPlanEmptyTrace(t *testing.T) {
	w := workloads.Daxpy(64, 1)
	if _, err := BuildPlan(w.Prog, 0, DefaultSpec()); err == nil {
		t.Fatal("zero-budget plan should fail with an empty-trace error")
	}
}

// TestRunSingleIntervalMatchesFull: when the whole trace fits in one
// interval, the sampled run times every instruction and the estimate must
// reproduce the full simulation exactly.
func TestRunSingleIntervalMatchesFull(t *testing.T) {
	w := workloads.Daxpy(64, 2)
	cfg := uarch.POWER10()
	spec := DefaultSpec()
	spec.IntervalInsts = 1 << 30 // one interval covers everything
	est, err := Run(cfg, w.Prog, w.Budget, 0, 1, 10_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	if est.Meta.K != 1 || est.Meta.Intervals != 1 {
		t.Fatalf("expected a single interval/cluster, got %d/%d", est.Meta.Intervals, est.Meta.K)
	}
	full, err := uarch.Simulate(cfg, []trace.Stream{trace.NewVMStream(w.Prog, w.Budget)}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if est.Activity != full.Activity {
		t.Fatalf("degenerate sampled activity differs from full run:\nsampled CPI %.4f cycles %d\nfull    CPI %.4f cycles %d",
			est.Activity.CPI(), est.Activity.Cycles, full.Activity.CPI(), full.Activity.Cycles)
	}
}

// TestRunErrorBounds: the headline contract on a real kernel — the sampled
// estimate's CPI and average power land within the validation bounds of the
// full run, and the run actually times fewer instructions than it covers.
func TestRunErrorBounds(t *testing.T) {
	// Long enough (hundreds of intervals) that the adaptive sample converges
	// well short of full coverage; the speedup assertion is meaningless on
	// traces a few intervals long, where sampling degenerates to full runs.
	w := workloads.Daxpy(4096, 160)
	for _, smt := range []int{1, 4} {
		cfg := uarch.POWER10()
		est, err := Run(cfg, w.Prog, w.Budget, 0, smt, 40_000_000, DefaultSpec())
		if err != nil {
			t.Fatalf("smt%d: %v", smt, err)
		}
		streams := make([]trace.Stream, smt)
		for i := range streams {
			streams[i] = trace.NewVMStream(w.Prog, w.Budget)
		}
		full, err := uarch.Simulate(cfg, streams, 40_000_000)
		if err != nil {
			t.Fatalf("smt%d: %v", smt, err)
		}
		model := power.NewModel(cfg)
		fullPow := model.Report(&full.Activity).Total
		cpiErr := relErr(est.Activity.CPI(), full.Activity.CPI())
		powErr := relErr(est.Meta.AvgPower, fullPow)
		t.Logf("smt%d: cpi %.4f vs %.4f (%.2f%%), power %.2f vs %.2f (%.2f%%), speedup %.1fx",
			smt, est.Activity.CPI(), full.Activity.CPI(), 100*cpiErr,
			est.Meta.AvgPower, fullPow, 100*powErr, est.Meta.Speedup())
		if cpiErr > CPIErrBound {
			t.Errorf("smt%d: CPI error %.2f%% exceeds %.0f%%", smt, 100*cpiErr, 100*CPIErrBound)
		}
		if powErr > PowerErrBound {
			t.Errorf("smt%d: power error %.2f%% exceeds %.0f%%", smt, 100*powErr, 100*PowerErrBound)
		}
		if est.Meta.Speedup() <= 1 {
			t.Errorf("smt%d: no effective speedup (%.2fx)", smt, est.Meta.Speedup())
		}
		if est.Activity.Instructions != full.Activity.Instructions {
			t.Errorf("smt%d: extrapolated instructions %d != full %d",
				smt, est.Activity.Instructions, full.Activity.Instructions)
		}
	}
}

// TestRunWarmupROI: a sampled run with a measurement warmup must estimate
// the same region of interest a full run measures under uarch.WithWarmup.
func TestRunWarmupROI(t *testing.T) {
	w := workloads.Daxpy(4096, 12)
	cfg := uarch.POWER10()
	est, err := Run(cfg, w.Prog, w.Budget, w.Warmup, 1, 40_000_000, DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	full, err := uarch.Simulate(cfg, []trace.Stream{trace.NewVMStream(w.Prog, w.Budget)},
		40_000_000, uarch.WithWarmup(w.Warmup))
	if err != nil {
		t.Fatal(err)
	}
	if cpiErr := relErr(est.Activity.CPI(), full.Activity.CPI()); cpiErr > CPIErrBound {
		t.Errorf("ROI CPI error %.2f%% exceeds %.0f%% (sampled %.4f, full %.4f)",
			100*cpiErr, 100*CPIErrBound, est.Activity.CPI(), full.Activity.CPI())
	}
	// The full run's warmup boundary quantizes to a retire group, so the
	// measured instruction counts may differ by a few instructions.
	diff := int64(est.Activity.Instructions) - int64(full.Activity.Instructions)
	if diff < -64 || diff > 64 {
		t.Errorf("ROI coverage %d too far from full measured instructions %d",
			est.Activity.Instructions, full.Activity.Instructions)
	}
	if _, err := Run(cfg, w.Prog, w.Budget, w.Budget, 1, 40_000_000, DefaultSpec()); err == nil {
		t.Error("warmup consuming the whole trace should fail")
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
