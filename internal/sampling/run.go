package sampling

import (
	"fmt"
	"math"

	"power10sim/internal/isa"
	"power10sim/internal/power"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
)

// Meta is the sampled-run summary that rides alongside the extrapolated
// Activity: what was classified, what was actually simulated, and the
// per-metric confidence intervals. It is JSON-serializable so the runner's
// persistent cache can store it next to the activity payload.
type Meta struct {
	Spec      Spec `json:"spec"`
	Intervals int  `json:"intervals"`
	K         int  `json:"k"`
	// Windows is the number of representative windows actually simulated
	// (up to Spec.RepsPerCluster per cluster with nonzero ROI weight).
	Windows    int    `json:"windows"`
	SMT        int    `json:"smt"`
	TotalInsts uint64 `json:"total_insts"`
	// ROIInsts is the instruction coverage of the extrapolation: the
	// region-of-interest (everything after the request's warmup boundary)
	// across threads. Equal to TotalInsts for warmup-free runs.
	ROIInsts uint64 `json:"roi_insts"`
	// SimulatedInsts counts instructions that went through the *timed*
	// simulator (measured windows plus timed warmup prefixes, across
	// threads). Functional warming is not counted: it runs no timing model.
	SimulatedInsts uint64 `json:"simulated_insts"`
	// CPI / AvgPower are the extrapolated whole-run estimates; the HalfWidth
	// fields are 95% confidence half-intervals from the cluster-weighted
	// dispersion of the representative metrics (see DESIGN.md).
	CPI            float64 `json:"cpi"`
	CPIHalfWidth   float64 `json:"cpi_half_width"`
	AvgPower       float64 `json:"avg_power"`
	PowerHalfWidth float64 `json:"power_half_width"`
}

// Speedup returns the effective simulation speedup: trace instructions the
// estimate covers per instruction actually timed.
func (m *Meta) Speedup() float64 {
	if m.SimulatedInsts == 0 {
		return 0
	}
	return float64(m.TotalInsts) / float64(m.SimulatedInsts)
}

// Estimate is a completed sampled run: extrapolated whole-run counters, the
// power report computed from them, and the sampling metadata.
type Estimate struct {
	// Activity is the cluster-weight extrapolation of every counter to the
	// whole run (rounded to integers).
	Activity uarch.Activity
	// Report is the power model applied to the extrapolated activity —
	// exactly how the full path derives power from a run's counters.
	Report *power.Report
	Meta   Meta
	Plan   *Plan
}

// Run phase-classifies prog's dynamic trace (budget instructions per thread)
// and estimates the behavior of an smt-thread simulation on cfg by simulating
// one representative interval per phase. warmup is the measurement warmup in
// total instructions across threads (runner.Request.Warmup semantics): the
// extrapolation covers only the region of interest after it, exactly like a
// full run under uarch.WithWarmup. extra options (e.g. uarch.WithContext for
// cancellation) are applied to every representative simulation before the
// engine's own warmup option.
//
// The SMT model mirrors the experiment harness: smt hardware threads each
// run an identical copy of the workload, so one per-thread trace classifies
// all of them and each representative is simulated at the requested SMT
// level with smt copies of its window.
// staggerMinPCs gates the SMT thread stagger on the measured interval's
// static footprint: intervals touching fewer distinct PCs are tight loops
// whose lockstep copies replay a real run faithfully, and staggering them
// desynchronizes the loop steady state instead (see simWindow). The cut
// sits between the streaming kernels (daxpy 12, stressmark 26 PCs per
// 2k-instruction interval) and phase-structured code (dgemm 48, resnet 131).
const staggerMinPCs = 32

func Run(cfg *uarch.Config, prog *isa.Program, budget, warmup uint64, smt int, maxCycles uint64, spec Spec, extra ...uarch.SimOption) (*Estimate, error) {
	if smt < 1 {
		smt = 1
	}
	plan, err := BuildPlan(prog, budget, spec)
	if err != nil {
		return nil, err
	}
	spec = plan.Spec

	// The region of interest starts at the per-thread warmup boundary.
	// Cluster weights are each phase's instruction share *inside* the ROI;
	// a phase living entirely in the warmup region gets weight zero and is
	// never simulated.
	roi := warmup / uint64(smt)
	if roi >= plan.TotalInsts {
		return nil, fmt.Errorf("sampling: warmup %d consumes the whole %d-instruction trace",
			warmup, plan.TotalInsts*uint64(smt))
	}
	roiIns := make([]uint64, plan.K())
	for i := range plan.Intervals {
		iv := &plan.Intervals[i]
		if iv.End <= roi {
			continue
		}
		lo := max(iv.Start, roi)
		roiIns[iv.Cluster] += iv.End - lo
	}
	totalROI := plan.TotalInsts - roi
	weights := make([]float64, plan.K())
	for c := range weights {
		weights[c] = float64(roiIns[c]) / float64(totalROI)
	}

	// Pass 2+3, interleaved: simulate representative windows and adaptively
	// add more until the stratified confidence interval converges. A window
	// is the representative interval plus a short timed-warmup prefix
	// (WarmupIntervals intervals, captured by deterministic functional
	// replay) plus a functional-warming pass over the whole prefix [0, lo)
	// so caches, TLB and predictors hold their in-context state.
	model := power.NewModel(cfg)
	roiInsts := totalROI * uint64(smt)
	var simulated uint64
	type meas struct {
		act      uarch.Activity
		cpi, pow float64
	}
	samples := make([][]meas, plan.K())
	simWindow := func(c, ivIdx int) error {
		iv := plan.Intervals[ivIdx]
		lo := iv.Start
		if back := spec.IntervalInsts * uint64(spec.WarmupIntervals); back < lo {
			lo -= back
		} else {
			lo = 0
		}
		// The window is warmup prefix + measured interval + cooldown suffix.
		// The suffix (the successor interval, when one exists) keeps the
		// pipeline fed past the measurement boundary: WithMeasureLimit stops
		// counting at the interval's end with successors still in flight, so
		// the window does not pay a whole-pipeline drain that in-context
		// execution overlaps with downstream work.
		hi := min(iv.End+spec.IntervalInsts, plan.TotalInsts)
		recs := make([]isa.DynInst, 0, hi-lo)
		replay := trace.NewVMStream(prog, hi)
		for idx := uint64(0); ; idx++ {
			d, ok := replay.Next()
			if !ok {
				break
			}
			if idx >= lo {
				recs = append(recs, d)
			}
		}
		if err := replay.Err(); err != nil {
			return fmt.Errorf("sampling: capture pass: %w", err)
		}
		// Thread stagger: a real SMT run's threads drift a few hundred
		// instructions apart (measured: spreads of 100-400 at SMT4), so their
		// resource demands decorrelate. Perfectly phase-locked copies issue
		// the same loads to the same ports on the same cycles — a systematic
		// CPI overestimate. Thread t skips the first t*skew warmup records so
		// the copies run offset on the drift scale; the skip is clamped to the
		// warmup prefix so the measured interval itself is never consumed
		// (interval 0's threads start aligned, exactly as a real run does).
		//
		// The stagger is gated on the interval's static footprint: inside a
		// tight loop (few distinct PCs) lockstep copies are interchangeable
		// and already unbiased, while an offset desynchronizes the loop's
		// steady state and inflates CPI — measured +4% on a 12-PC streaming
		// kernel at SMT8 versus +10% for lockstep copies of a 131-PC phase
		// at SMT4. Large-footprint code staggers; tight loops stay aligned.
		skew := spec.IntervalInsts / uint64(4*smt)
		pcs := make(map[uint64]struct{}, staggerMinPCs)
		for i := iv.Start - lo; i < uint64(len(recs)) && i < iv.End-lo; i++ {
			pcs[recs[i].PC] = struct{}{}
			if len(pcs) >= staggerMinPCs {
				break
			}
		}
		if len(pcs) < staggerMinPCs {
			skew = 0
		}
		var warm uint64
		streams := make([]trace.Stream, smt)
		for t := 0; t < smt; t++ {
			skip := min(uint64(t)*skew, iv.Start-lo)
			streams[t] = trace.NewSliceStream(prog, recs[skip:])
			warm += iv.Start - lo - skip
		}
		opts := append(append([]uarch.SimOption{}, extra...), uarch.WithWarmup(warm))
		if hi > iv.End {
			// No suffix on the trace's last interval: there it genuinely ends
			// with a drain in context, so the natural run-out is the truth.
			opts = append(opts, uarch.WithMeasureLimit(iv.Insts()*uint64(smt)))
		}
		if lo > 0 {
			warms := make([]trace.Stream, smt)
			for t := 0; t < smt; t++ {
				warms[t] = trace.NewVMStream(prog, lo)
			}
			opts = append(opts, uarch.WithFunctionalWarming(warms))
		}
		res, err := uarch.Simulate(cfg, streams, maxCycles, opts...)
		if err != nil {
			return fmt.Errorf("sampling: representative [%d,%d) of cluster %d: %w",
				iv.Start, iv.End, c, err)
		}
		simulated += uint64(len(recs)) * uint64(smt)
		a := &res.Activity
		if a.Instructions == 0 {
			return fmt.Errorf("sampling: representative [%d,%d) of cluster %d retired nothing",
				iv.Start, iv.End, c)
		}
		samples[c] = append(samples[c], meas{act: res.Activity, cpi: a.CPI(), pow: model.Report(a).Total})
		return nil
	}

	// Initial allocation: RepsPerCluster windows per live cluster.
	for c, cl := range plan.Clusters {
		if roiIns[c] == 0 {
			continue // a phase living entirely in warmup is never simulated
		}
		for _, ivIdx := range cl.Reps[:min(spec.RepsPerCluster, len(cl.Reps))] {
			if err := simWindow(c, ivIdx); err != nil {
				return nil, err
			}
		}
	}

	// Adaptive refinement: while the CPI or power confidence interval is
	// wider than half the published error bound, simulate one more member of
	// the cluster contributing the most estimator variance. Terminates at
	// full coverage in the worst case (each fully simulated cluster has zero
	// variance contribution by the finite-population correction).
	strata := func(metric func(*meas) float64) []stratum {
		out := make([]stratum, plan.K())
		for c := range samples {
			xs := make([]float64, len(samples[c]))
			for i := range samples[c] {
				xs[i] = metric(&samples[c][i])
			}
			out[c] = stratum{weight: weights[c], total: plan.Clusters[c].Members, xs: xs}
		}
		return out
	}
	for {
		cpiStrata := strata(func(m *meas) float64 { return m.cpi })
		powStrata := strata(func(m *meas) float64 { return m.pow })
		cpiMean, cpiHalf := stratifiedCI(cpiStrata)
		powMean, powHalf := stratifiedCI(powStrata)
		if (cpiMean == 0 || cpiHalf <= CPIErrBound/2*cpiMean) &&
			(powMean == 0 || powHalf <= PowerErrBound/2*powMean) {
			break
		}
		cpiVars := flooredVars(cpiStrata)
		powVars := flooredVars(powStrata)
		best, bestScore := -1, 0.0
		for c := range samples {
			m := len(samples[c])
			if weights[c] == 0 || m == 0 || m >= len(plan.Clusters[c].Reps) {
				continue
			}
			var relvar float64
			if cpiMean > 0 {
				relvar = cpiVars[c] / (cpiMean * cpiMean)
			}
			if powMean > 0 {
				relvar += powVars[c] / (powMean * powMean)
			}
			fpc := 1 - float64(m)/float64(plan.Clusters[c].Members)
			if score := weights[c] * weights[c] * fpc * relvar / float64(m); score > bestScore {
				best, bestScore = c, score
			}
		}
		if best < 0 || bestScore == 0 {
			break // nothing left to sample (or no estimated variance remains)
		}
		if err := simWindow(best, plan.Clusters[best].Reps[len(samples[best])]); err != nil {
			return nil, err
		}
	}

	// Extrapolate: each cluster's measured windows share its ROI weight
	// equally (they are an unbiased sample of the phase), and every counter
	// is scaled so the cluster contributes its exact ROI instruction share.
	est := &Estimate{Plan: plan}
	var ext extrapolator
	windows := 0
	for c := range samples {
		for i := range samples[c] {
			m := &samples[c][i]
			cw := weights[c] / float64(len(samples[c]))
			ext.add(&m.act, cw*float64(roiInsts)/float64(m.act.Instructions))
			windows++
		}
	}
	est.Activity = ext.round()
	// Pin the identity counter: the extrapolated instruction total must
	// equal the ROI coverage exactly (rounding the scaled sum can drift).
	est.Activity.Instructions = roiInsts
	est.Report = model.Report(&est.Activity)

	cpiMean, cpiHalf := stratifiedCI(strata(func(m *meas) float64 { return m.cpi }))
	_, powHalf := stratifiedCI(strata(func(m *meas) float64 { return m.pow }))
	est.Meta = Meta{
		Spec:           spec,
		Intervals:      len(plan.Intervals),
		K:              plan.K(),
		Windows:        windows,
		SMT:            smt,
		TotalInsts:     plan.TotalInsts * uint64(smt),
		ROIInsts:       roiInsts,
		SimulatedInsts: simulated,
		CPI:            cpiMean,
		CPIHalfWidth:   cpiHalf,
		AvgPower:       est.Report.Total,
		PowerHalfWidth: powHalf,
	}
	return est, nil
}

// stratum is one phase's measured metric samples for interval estimation:
// its ROI weight, its population size (member intervals), and the sampled
// values.
type stratum struct {
	weight float64
	total  int
	xs     []float64
}

// stratifiedCI returns the stratified estimate of the population mean and a
// 95% confidence half-width. Each stratum contributes weight*mean to the
// estimate and weight^2 * fpc * s^2/m to the estimator variance, where fpc
// is the finite-population correction (1 - m/n): a fully simulated stratum
// contributes exactly zero uncertainty. Per-stratum variances come from
// flooredVars, so a handful of coincidentally equal draws from a
// heterogeneous phase cannot collapse the interval to zero.
func stratifiedCI(strata []stratum) (mean, half float64) {
	vars := flooredVars(strata)
	var variance float64
	for i, st := range strata {
		m := float64(len(st.xs))
		if m == 0 {
			continue
		}
		var mu float64
		for _, x := range st.xs {
			mu += x
		}
		mu /= m
		mean += st.weight * mu
		if st.total <= len(st.xs) {
			continue
		}
		fpc := 1 - m/float64(st.total)
		variance += st.weight * st.weight * fpc * vars[i] / m
	}
	return mean, 1.96 * math.Sqrt(variance)
}

// flooredVars returns each stratum's variance estimate: its own unbiased
// sample variance, floored — while the stratum is not fully covered — by the
// pooled within-stratum variance across all strata. The floor is what makes
// the small-sample confidence interval honest: feature-space clustering is
// imperfect, so a phase's first few draws can coincide (observed variance
// zero) while the phase itself is heterogeneous. Phases of one workload share
// the same unexplained-variance scale, so the pool borrows strength from the
// well-sampled clusters; on genuinely homogeneous workloads the pool is tiny
// and the floor costs nothing.
func flooredVars(strata []stratum) []float64 {
	var num, den float64
	for _, st := range strata {
		if m := len(st.xs); m >= 2 {
			num += float64(m-1) * varOf(st.xs)
			den += float64(m - 1)
		}
	}
	var pooled float64
	if den > 0 {
		pooled = num / den
	}
	out := make([]float64, len(strata))
	for i, st := range strata {
		var v float64
		if len(st.xs) >= 2 {
			v = varOf(st.xs)
		}
		if len(st.xs) < st.total && v < pooled {
			v = pooled
		}
		out[i] = v
	}
	return out
}

// varOf is the unbiased sample variance (zero for fewer than two samples).
func varOf(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mu float64
	for _, x := range xs {
		mu += x
	}
	mu /= float64(len(xs))
	var s2 float64
	for _, x := range xs {
		d := x - mu
		s2 += d * d
	}
	return s2 / float64(len(xs)-1)
}

// extrapolator accumulates weighted activity counters in float space and
// rounds once at the end, so many small clusters do not each lose a fraction
// to integer truncation.
type extrapolator struct {
	vals [activityFields]float64
}

// activityFields is the flattened counter count (see flatten): 45 scalar
// counters plus the PerThread, IssueByClass and UnitBusy arrays. The
// reflection round-trip test pins this against the Activity struct.
const activityFields = 45 + 8 + int(isa.NumClasses) + int(uarch.NumUnits)

// add accumulates f * every counter of a.
func (e *extrapolator) add(a *uarch.Activity, f float64) {
	var buf [activityFields]uint64
	flatten(a, &buf)
	for i, v := range buf {
		e.vals[i] += f * float64(v)
	}
}

// round renders the accumulated floats back into an Activity.
func (e *extrapolator) round() uarch.Activity {
	var buf [activityFields]uint64
	for i, v := range e.vals {
		if v > 0 {
			buf[i] = uint64(math.Round(v))
		}
	}
	var a uarch.Activity
	unflatten(&buf, &a)
	return a
}

// flatten serializes every Activity counter into a fixed-order array; its
// inverse is unflatten. Keeping the pair adjacent (and covered by the
// round-trip test) is what lets the extrapolator scale all counters without
// a hand-written per-field scale function drifting from the struct.
func flatten(a *uarch.Activity, out *[activityFields]uint64) {
	i := 0
	put := func(v uint64) { out[i] = v; i++ }
	put(a.Cycles)
	put(a.Instructions)
	put(a.InternalOps)
	for _, v := range a.PerThread {
		put(v)
	}
	put(a.Flops)
	put(a.IntMACs)
	put(a.FetchSlots)
	put(a.WrongPathSlots)
	put(a.FlushedInsts)
	put(a.FetchStallCycles)
	put(a.ICacheAccesses)
	put(a.ICacheMisses)
	put(a.IERATLookups)
	put(a.BranchObserved)
	put(a.BranchMispredicts)
	put(a.SecondPredHits)
	put(a.DecodeSlots)
	put(a.FusedPairs)
	put(a.RenameOps)
	put(a.DispatchStallCycles)
	put(a.DispatchStallROB)
	put(a.DispatchStallIQ)
	put(a.DispatchStallLSQ)
	for _, v := range a.IssueByClass {
		put(v)
	}
	put(a.IssueQueueWrites)
	put(a.RSWakeups)
	put(a.RegReads)
	put(a.RegWrites)
	put(a.L1DAccesses)
	put(a.L1DMisses)
	put(a.L2Accesses)
	put(a.L2Misses)
	put(a.L3Accesses)
	put(a.L3Misses)
	put(a.MemAccesses)
	put(a.DERATLookups)
	put(a.TLBLookups)
	put(a.TLBMisses)
	put(a.LQAllocs)
	put(a.SQAllocs)
	put(a.SQGathered)
	put(a.StoreForwards)
	put(a.LMQFull)
	put(a.Prefetches)
	put(a.MMAOps)
	put(a.MMAMoves)
	put(a.MMAActiveCycles)
	for _, v := range a.UnitBusy {
		put(v)
	}
	if i != activityFields {
		panic(fmt.Sprintf("sampling: flatten covered %d fields, want %d", i, activityFields))
	}
}

func unflatten(in *[activityFields]uint64, a *uarch.Activity) {
	i := 0
	get := func() uint64 { v := in[i]; i++; return v }
	a.Cycles = get()
	a.Instructions = get()
	a.InternalOps = get()
	for j := range a.PerThread {
		a.PerThread[j] = get()
	}
	a.Flops = get()
	a.IntMACs = get()
	a.FetchSlots = get()
	a.WrongPathSlots = get()
	a.FlushedInsts = get()
	a.FetchStallCycles = get()
	a.ICacheAccesses = get()
	a.ICacheMisses = get()
	a.IERATLookups = get()
	a.BranchObserved = get()
	a.BranchMispredicts = get()
	a.SecondPredHits = get()
	a.DecodeSlots = get()
	a.FusedPairs = get()
	a.RenameOps = get()
	a.DispatchStallCycles = get()
	a.DispatchStallROB = get()
	a.DispatchStallIQ = get()
	a.DispatchStallLSQ = get()
	for j := range a.IssueByClass {
		a.IssueByClass[j] = get()
	}
	a.IssueQueueWrites = get()
	a.RSWakeups = get()
	a.RegReads = get()
	a.RegWrites = get()
	a.L1DAccesses = get()
	a.L1DMisses = get()
	a.L2Accesses = get()
	a.L2Misses = get()
	a.L3Accesses = get()
	a.L3Misses = get()
	a.MemAccesses = get()
	a.DERATLookups = get()
	a.TLBLookups = get()
	a.TLBMisses = get()
	a.LQAllocs = get()
	a.SQAllocs = get()
	a.SQGathered = get()
	a.StoreForwards = get()
	a.LMQFull = get()
	a.Prefetches = get()
	a.MMAOps = get()
	a.MMAMoves = get()
	a.MMAActiveCycles = get()
	for j := range a.UnitBusy {
		a.UnitBusy[j] = get()
	}
}
