// Package sampling is the SimPoint-style statistical sampling engine: it
// phase-classifies a workload's dynamic instruction stream into fixed-size
// intervals, clusters the intervals by behavioral signature, simulates only
// one representative interval per cluster (with a functional-warming prefix),
// and extrapolates whole-run CPI, activity counts, and power with
// cluster-weight aggregation and per-metric confidence intervals.
//
// The economics mirror the paper's methodology: pre-silicon energy sweeps are
// simulation-bound (the paper leaned on AWAN hardware acceleration for
// exactly this reason), and representative-interval execution buys another
// 10-100x on top of any hot-loop speedup by simulating *fewer* instructions
// rather than simulating them faster. Functional execution (the isa VM) is
// orders of magnitude cheaper than timed simulation, so the two functional
// passes the engine makes over the trace are noise next to the timed work it
// avoids.
//
// Determinism: featurization is a pure function of the trace, k-means uses a
// seeded LCG for initialization, ties break on lowest index, and the
// representative simulations are the same deterministic core runs the full
// path uses — so a sampling estimate is bit-identical across processes and
// may join the runner's content-keyed caches (the Spec is part of the key).
package sampling

import (
	"errors"
	"fmt"

	"power10sim/internal/isa"
	"power10sim/internal/trace"
)

// Error bounds the validation harness (and `make sample-check`) asserts:
// a sampled estimate must land within these relative errors of the full run.
const (
	// CPIErrBound is the maximum tolerated relative CPI error.
	CPIErrBound = 0.03
	// PowerErrBound is the maximum tolerated relative average-power error.
	PowerErrBound = 0.05
)

// Spec is the sampling configuration. It is a flat comparable struct on
// purpose: the spec joins runner.Key (and the persistent p10cache-v1 disk
// key), so sampled and full results of the same simulation never collide.
type Spec struct {
	// IntervalInsts is the phase-classification interval length in dynamic
	// instructions (per thread).
	IntervalInsts uint64
	// MaxK bounds the number of clusters (and therefore representative
	// simulations). The BIC pick may choose fewer.
	MaxK int
	// RepsPerCluster is how many member intervals are simulated per cluster
	// (a systematic within-cluster sample). One representative measures a
	// phase's center; the extras sample the residual within-phase variance
	// the feature space cannot explain, which is what keeps the CPI error
	// bounded on heterogeneous workloads.
	RepsPerCluster int
	// WarmupIntervals is the functional-warming prefix replayed before each
	// representative: caches, branch predictors and queues warm during it,
	// its statistics are discarded (uarch.WithWarmup).
	WarmupIntervals int
	// SignatureDims is the number of hash buckets in the PC/basic-block
	// signature half of the feature vector.
	SignatureDims int
	// Seed drives the deterministic k-means++ initialization.
	Seed uint64
}

// DefaultSpec returns the tuned default configuration.
func DefaultSpec() Spec {
	return Spec{
		IntervalInsts:   2000,
		MaxK:            8,
		RepsPerCluster:  3,
		WarmupIntervals: 4,
		SignatureDims:   32,
		Seed:            1,
	}
}

// Normalized fills zero fields with the defaults and sanity-clamps the rest,
// so a partially specified Spec behaves predictably. Cache keys are built
// from the normalized form, so equivalent specs share cache entries.
func (s Spec) Normalized() Spec {
	d := DefaultSpec()
	if s.IntervalInsts == 0 {
		s.IntervalInsts = d.IntervalInsts
	}
	if s.MaxK <= 0 {
		s.MaxK = d.MaxK
	}
	if s.RepsPerCluster <= 0 {
		s.RepsPerCluster = d.RepsPerCluster
	}
	if s.WarmupIntervals < 0 {
		s.WarmupIntervals = 0
	}
	if s.SignatureDims <= 0 {
		s.SignatureDims = d.SignatureDims
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	return s
}

// Interval is one fixed-size slice of the dynamic trace.
type Interval struct {
	// Start and End are record indices [Start, End) into the dynamic trace.
	Start, End uint64
	// Cluster is the phase this interval was assigned to.
	Cluster int
	// features is the normalized behavior vector (class mix ++ PC signature).
	features []float64
}

// Insts returns the interval's dynamic instruction count.
func (iv *Interval) Insts() uint64 { return iv.End - iv.Start }

// Cluster is one phase: a set of behaviorally similar intervals represented
// by the member closest to the centroid.
type Cluster struct {
	// Rep is the index (into Plan.Intervals) of the primary representative:
	// the member closest to the centroid.
	Rep int
	// Reps is the cluster's full member list in sampling order (a seeded
	// deterministic shuffle, so any prefix is a simple random sample of the
	// phase). The engine simulates the first Spec.RepsPerCluster entries and
	// extends down the list adaptively until its confidence target is met.
	Reps []int
	// Members is the number of intervals assigned to the cluster.
	Members int
	// Insts is the total dynamic instructions across member intervals.
	Insts uint64
	// Weight is the cluster's share of the whole trace (by instructions).
	Weight float64
}

// Plan is a phase classification of one workload trace: the outcome of the
// featurize+cluster passes, ready for representative simulation.
type Plan struct {
	Spec      Spec
	Intervals []Interval
	Clusters  []Cluster
	// TotalInsts is the dynamic length of the (per-thread) trace.
	TotalInsts uint64
	// SSE is the final clustering's sum of squared distances (diagnostic).
	SSE float64
}

// K returns the chosen cluster count.
func (p *Plan) K() int { return len(p.Clusters) }

// BuildPlan functionally executes prog for up to budget instructions
// (pass 1: no timing, no record storage), featurizes fixed-size intervals,
// and clusters them into phases. The trace ends at the program's halt when
// that comes before the budget.
func BuildPlan(prog *isa.Program, budget uint64, spec Spec) (*Plan, error) {
	spec = spec.Normalized()
	stream := trace.NewVMStream(prog, budget)
	var (
		intervals []Interval
		n         uint64
	)
	cur := newFeatureAcc(spec.SignatureDims)
	// prev retains the raw counts of the most recently completed interval so
	// an undersized tail can be merged into it exactly (counts, not vectors).
	prev := newFeatureAcc(spec.SignatureDims)
	seenLines := make(map[uint64]struct{})
	seenPages := make(map[uint64]struct{})
	start := uint64(0)
	for {
		d, ok := stream.Next()
		if !ok {
			break
		}
		in := &prog.Code[d.Idx]
		cls := in.Class()
		cur.observe(cls, d.PC)
		if cls.IsMem() {
			// First-touch rates are the microarchitectural half of the
			// signature: behaviorally identical code runs at a very
			// different CPI while its working set is still being faulted
			// in, and the class mix + PC signature cannot see that. A
			// cold-footprint feature separates the warmup ramp into its
			// own phase so its representative carries its true weight.
			if line := d.EA / lineBytes; !member(seenLines, line) {
				cur.newLines++
			}
			if page := d.EA / pageBytes; !member(seenPages, page) {
				cur.newPages++
			}
		}
		n++
		if n-start >= spec.IntervalInsts {
			intervals = append(intervals, Interval{Start: start, End: n, features: cur.vector()})
			prev, cur = cur, prev
			cur.reset()
			start = n
		}
	}
	if err := stream.Err(); err != nil {
		return nil, fmt.Errorf("sampling: functional pass: %w", err)
	}
	if n == 0 {
		return nil, errors.New("sampling: empty dynamic trace")
	}
	if n > start {
		// The partial tail's instructions must be accounted for or short
		// traces extrapolate with a bias. A runt tail (under half an interval)
		// is merged into the previous interval rather than kept: as its own
		// (usually singleton) phase it would buy a whole representative
		// simulation for negligible weight, and a measured window shorter than
		// a retire group can be swallowed entirely by the warmup boundary's
		// group quantization.
		if tail := n - start; len(intervals) > 0 && tail*2 < spec.IntervalInsts {
			prev.merge(cur)
			last := &intervals[len(intervals)-1]
			last.End = n
			last.features = prev.vector()
		} else {
			intervals = append(intervals, Interval{Start: start, End: n, features: cur.vector()})
		}
	}
	plan := &Plan{Spec: spec, Intervals: intervals, TotalInsts: n}
	plan.cluster()
	return plan, nil
}

// lineBytes/pageBytes are the footprint-tracking granularities for the
// first-touch features. They are deliberately config-independent constants
// (the plan is built once per workload, not per core config); 64B lines and
// 4KiB pages match every modeled configuration.
const (
	lineBytes = 64
	pageBytes = 4096
)

// member reports whether v is in set, inserting it if not.
func member(set map[uint64]struct{}, v uint64) bool {
	if _, ok := set[v]; ok {
		return true
	}
	set[v] = struct{}{}
	return false
}

// featureAcc accumulates one interval's feature counts.
type featureAcc struct {
	byClass  [isa.NumClasses]uint64
	pcSig    []uint64
	newLines uint64
	newPages uint64
	insts    uint64
}

func newFeatureAcc(sigDims int) *featureAcc {
	return &featureAcc{pcSig: make([]uint64, sigDims)}
}

func (f *featureAcc) observe(c isa.Class, pc uint64) {
	f.byClass[c]++
	f.pcSig[mix64(pc)%uint64(len(f.pcSig))]++
	f.insts++
}

// merge adds o's raw counts into f (used to fold a runt tail interval into
// its predecessor before re-rendering the feature vector).
func (f *featureAcc) merge(o *featureAcc) {
	for i, v := range o.byClass {
		f.byClass[i] += v
	}
	for i, v := range o.pcSig {
		f.pcSig[i] += v
	}
	f.newLines += o.newLines
	f.newPages += o.newPages
	f.insts += o.insts
}

func (f *featureAcc) reset() {
	f.byClass = [isa.NumClasses]uint64{}
	for i := range f.pcSig {
		f.pcSig[i] = 0
	}
	f.newLines = 0
	f.newPages = 0
	f.insts = 0
}

// vector renders the accumulated counts as a normalized feature vector: the
// instruction-class mix (sums to 1), the PC-signature distribution (sums to
// 1), and the per-instruction first-touch rates for cache lines and pages.
// Every element is a fraction of the interval's instructions, so intervals
// of different lengths (the tail) are comparable.
func (f *featureAcc) vector() []float64 {
	out := make([]float64, isa.NumClasses+len(f.pcSig)+2)
	if f.insts == 0 {
		return out
	}
	inv := 1 / float64(f.insts)
	for i, v := range f.byClass {
		out[i] = float64(v) * inv
	}
	for i, v := range f.pcSig {
		out[isa.NumClasses+i] = float64(v) * inv
	}
	out[isa.NumClasses+len(f.pcSig)] = float64(f.newLines) * inv
	out[isa.NumClasses+len(f.pcSig)+1] = float64(f.newPages) * inv
	return out
}

// mix64 is a splitmix64-style finalizer used for PC bucketing and the
// deterministic k-means LCG.
func mix64(z uint64) uint64 {
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}
