// Package flightrec is the harness's crash-safe flight recorder: a bounded
// in-memory ring of the most recent progress-bus events and operator notes,
// paired with a baseline telemetry snapshot, that can be dumped atomically to
// JSON at the moment something goes wrong — a panic, a SIGQUIT, a watchdog
// kill, a lost lease, a chaos exit. The dump answers the post-mortem question
// the live endpoints cannot: "what was this process doing in the seconds
// before it died?", from a process that is already dying.
//
// The recorder follows the repository's observability conventions:
//
//   - Nil is off. Every method on a nil *Recorder does nothing, so CLIs arm
//     it unconditionally behind a flag.
//   - Bounded memory. The ring holds Capacity entries; older entries are
//     dropped and counted, never reallocated at dump time.
//   - Crash-safe output. Dumps go through the telemetry package's atomic
//     write (temp file + rename), so a dump interrupted by the very crash it
//     is recording leaves either the previous complete dump or nothing —
//     never a truncated file. p10obscheck -flightrec validates the schema.
//   - Counters dump as deltas. The dump reports each counter's change since
//     the recorder was armed, not its absolute value, so "what happened this
//     flight" is readable without a baseline scrape to diff against.
package flightrec

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"encoding/json"

	"power10sim/internal/progress"
	"power10sim/internal/telemetry"
)

// Schema identifies the dump format; p10obscheck -flightrec verifies it.
const Schema = "p10flightrec-v1"

// DefaultCapacity is the ring size when Options.Capacity is unset: enough to
// hold the tail of any realistic sweep's event stream without mattering to
// the process footprint.
const DefaultCapacity = 256

// Options configures a Recorder.
type Options struct {
	// Command names the process in the dump ("p10bench", "p10worker", ...).
	Command string
	// Capacity bounds the event ring (default DefaultCapacity).
	Capacity int
	// Bus, when non-nil, is subscribed to and its events recorded into the
	// ring as they are published.
	Bus *progress.Bus
	// Registry, when non-nil, is snapshotted at arm time (the delta baseline)
	// and again at each dump.
	Registry *telemetry.Registry
	// DumpPath is the default destination for Dump/DumpOnPanic; empty makes
	// those methods no-ops (WriteJSON and DumpFile still work).
	DumpPath string
	// AutoDump, when non-nil, is evaluated against every bus event; a true
	// return dumps to DumpPath immediately. WatchdogAutoDump is the stock
	// predicate (dump when a simulation dies by watchdog).
	AutoDump func(progress.Event) bool
}

// WatchdogAutoDump is the stock AutoDump predicate: fire on simulation
// failures and retries whose error mentions the watchdog — the hang-recovery
// path, where the pre-kill event tail is exactly what a post-mortem needs.
func WatchdogAutoDump(ev progress.Event) bool {
	if ev.Kind != progress.KindSimFailed && ev.Kind != progress.KindSimRetried {
		return false
	}
	return strings.Contains(ev.Err, "watchdog")
}

// Entry is one ring slot: a recorded bus event or an operator note.
type Entry struct {
	// Seq is the recorder-local sequence number, strictly increasing across
	// both kinds, so a validator can prove the ring is ordered and gap-free
	// modulo the counted drops.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind is "event" (Event is set) or "note" (Note is set).
	Kind  string          `json:"kind"`
	Event *progress.Event `json:"event,omitempty"`
	Note  string          `json:"note,omitempty"`
}

// CounterDelta is one counter's change since the recorder was armed.
type CounterDelta struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Delta  uint64            `json:"delta"`
}

// Dump is the serialized flight record.
type Dump struct {
	Schema  string `json:"schema"`
	Command string `json:"command"`
	// Reason says why the dump was taken ("panic: ...", "SIGQUIT",
	// "lease lost", "chaos kill", ...).
	Reason   string    `json:"reason"`
	DumpedAt time.Time `json:"dumped_at"`
	// Dropped counts ring entries lost to the capacity bound before this
	// dump (the recorder's own overwrites plus bus-side subscription drops).
	Dropped uint64  `json:"dropped,omitempty"`
	Events  []Entry `json:"events"`
	// Counters are deltas since arm time; Gauges are current values (a gauge
	// delta is meaningless). Both follow snapshot sort order.
	Counters []CounterDelta            `json:"counters,omitempty"`
	Gauges   []telemetry.GaugeSnapshot `json:"gauges,omitempty"`
}

// Recorder is the in-memory flight recorder. Construct with New; a nil
// *Recorder is a valid no-op.
type Recorder struct {
	opts     Options
	baseline telemetry.Snapshot
	sub      *progress.Subscription

	mu      sync.Mutex
	ring    []Entry
	next    int // ring insertion point once full
	seq     uint64
	dropped uint64
	done    chan struct{}
}

// New arms a recorder: takes the counter baseline and, when a bus is
// configured, starts draining its events into the ring. Close it to detach.
func New(opts Options) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	r := &Recorder{
		opts:     opts,
		baseline: opts.Registry.Snapshot(),
		done:     make(chan struct{}),
	}
	if opts.Bus != nil {
		// The subscription buffer matches the ring: a burst the ring would
		// overwrite anyway may as well drop at the bus (it is counted there).
		r.sub = opts.Bus.Subscribe(opts.Capacity)
		go r.drain()
	}
	return r
}

// drain moves bus events into the ring until the subscription closes.
func (r *Recorder) drain() {
	defer close(r.done)
	for ev := range r.sub.C() {
		ev := ev
		r.record(Entry{Kind: "event", Time: ev.Time, Event: &ev})
		if r.opts.AutoDump != nil && r.opts.AutoDump(ev) {
			_ = r.Dump(fmt.Sprintf("auto: %s", ev.String()))
		}
	}
}

// record appends one entry, overwriting the oldest once the ring is full.
func (r *Recorder) record(e Entry) {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if len(r.ring) < r.opts.Capacity {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
		r.next = (r.next + 1) % len(r.ring)
		r.dropped++
	}
	r.mu.Unlock()
}

// Note records an operator annotation ("draining on SIGTERM", "lease lost:
// <keys>"). Safe on nil.
func (r *Recorder) Note(format string, args ...any) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: "note", Note: fmt.Sprintf(format, args...)})
}

// snapshotLocked returns the ring in seq order plus the drop count.
func (r *Recorder) snapshot() (events []Entry, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	events = make([]Entry, 0, len(r.ring))
	if len(r.ring) == r.opts.Capacity {
		events = append(events, r.ring[r.next:]...)
		events = append(events, r.ring[:r.next]...)
	} else {
		events = append(events, r.ring...)
	}
	dropped = r.dropped
	if r.sub != nil {
		dropped += r.sub.Dropped()
	}
	return events, dropped
}

// WriteJSON serializes the flight record. Safe on nil (writes nothing,
// returns nil: there is no record to lose).
func (r *Recorder) WriteJSON(w io.Writer, reason string) error {
	if r == nil {
		return nil
	}
	events, dropped := r.snapshot()
	d := Dump{
		Schema:   Schema,
		Command:  r.opts.Command,
		Reason:   reason,
		DumpedAt: time.Now(),
		Dropped:  dropped,
		Events:   events,
	}
	if r.opts.Registry != nil {
		cur := r.opts.Registry.Snapshot()
		base := make(map[string]uint64, len(r.baseline.Counters))
		for _, c := range r.baseline.Counters {
			base[counterKey(c)] = c.Value
		}
		for _, c := range cur.Counters {
			delta := c.Value - base[counterKey(c)]
			if delta == 0 {
				continue
			}
			d.Counters = append(d.Counters, CounterDelta{Name: c.Name, Labels: c.Labels, Delta: delta})
		}
		d.Gauges = cur.Gauges
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func counterKey(c telemetry.CounterSnapshot) string {
	// Snapshot order is already canonical; a cheap composite key suffices
	// because label maps marshal with sorted keys.
	b, _ := json.Marshal(c.Labels)
	return c.Name + "\x00" + string(b)
}

// DumpFile writes the flight record to path atomically. Safe on nil.
func (r *Recorder) DumpFile(path, reason string) error {
	if r == nil {
		return nil
	}
	return telemetry.WriteFileAtomic(path, func(w io.Writer) error {
		return r.WriteJSON(w, reason)
	})
}

// Dump writes to the configured DumpPath; a recorder without one (or nil)
// silently succeeds. This is the method crash paths call — they have nowhere
// to report an error anyway, but it is returned for the paths that do.
func (r *Recorder) Dump(reason string) error {
	if r == nil || r.opts.DumpPath == "" {
		return nil
	}
	return r.DumpFile(r.opts.DumpPath, reason)
}

// DumpOnPanic is a deferred hook: if the goroutine is panicking, it dumps
// with the panic value as the reason and re-panics, preserving the crash
// (and its stack trace) while saving the flight record first. Safe on nil —
// the panic still propagates. Usage: defer rec.DumpOnPanic().
func (r *Recorder) DumpOnPanic() {
	p := recover()
	if p == nil {
		return
	}
	r.Note("panic: %v", p)
	_ = r.Dump(fmt.Sprintf("panic: %v", p))
	panic(p)
}

// ArmSIGQUIT installs a SIGQUIT handler that dumps the flight record (reason
// "SIGQUIT") and then exits through exit (default os.Exit) with code 2 —
// trading the runtime's goroutine dump for the flight record, which is the
// deliberate "post-mortem a live process" gesture. Safe on nil: no handler
// is installed and the runtime's default SIGQUIT behavior stays in place.
func (r *Recorder) ArmSIGQUIT(exit func(int)) {
	if r == nil {
		return
	}
	if exit == nil {
		exit = os.Exit
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		<-ch
		r.Note("SIGQUIT received")
		_ = r.Dump("SIGQUIT")
		exit(2)
	}()
}

// Close detaches the bus subscription and stops the drain goroutine. It does
// not dump — pair it with an explicit Dump/DumpFile where a final record is
// wanted. Safe on nil and idempotent via the subscription's own guard.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	if r.sub != nil {
		r.sub.Close()
		<-r.done
	}
}
