package flightrec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"power10sim/internal/progress"
	"power10sim/internal/telemetry"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Note("ignored %d", 1)
	if err := r.WriteJSON(os.Stderr, "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Dump("x"); err != nil {
		t.Fatal(err)
	}
	if err := r.DumpFile(filepath.Join(t.TempDir(), "f.json"), "x"); err != nil {
		t.Fatal(err)
	}
	r.ArmSIGQUIT(nil)
	r.Close()
}

func TestRingBoundAndOrder(t *testing.T) {
	r := New(Options{Command: "test", Capacity: 4})
	defer r.Close()
	for i := 0; i < 10; i++ {
		r.Note("note %d", i)
	}
	events, dropped := r.snapshot()
	if len(events) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(events))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	// The surviving tail is the most recent entries, in seq order.
	for i, e := range events {
		if want := fmt.Sprintf("note %d", 6+i); e.Note != want {
			t.Errorf("entry %d = %q, want %q", i, e.Note, want)
		}
		if i > 0 && e.Seq != events[i-1].Seq+1 {
			t.Errorf("seq gap at %d: %d after %d", i, e.Seq, events[i-1].Seq)
		}
	}
}

func TestBusEventsAndAutoDump(t *testing.T) {
	bus := progress.NewBus()
	defer bus.Close()
	path := filepath.Join(t.TempDir(), "auto.json")
	r := New(Options{
		Command:  "test",
		Bus:      bus,
		DumpPath: path,
		AutoDump: WatchdogAutoDump,
	})
	defer r.Close()

	bus.Publish(progress.Event{Kind: progress.KindSimStarted, Sim: "a"})
	bus.Publish(progress.Event{Kind: progress.KindSimFailed, Sim: "a", Err: "watchdog: killed after 1s"})
	// The auto-dump fires on the drain goroutine; poll for the file.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog event never auto-dumped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if d.Schema != Schema || d.Command != "test" {
		t.Fatalf("dump header = %q/%q", d.Schema, d.Command)
	}
	if len(d.Reason) < len("auto: ") || d.Reason[:6] != "auto: " {
		t.Fatalf("reason = %q, want auto: prefix", d.Reason)
	}
	found := false
	for _, e := range d.Events {
		if e.Kind == "event" && e.Event != nil && e.Event.Kind == progress.KindSimFailed {
			found = true
		}
	}
	if !found {
		t.Error("dump does not contain the triggering failure event")
	}
}

func TestCounterDeltasAgainstBaseline(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("pre_existing").Add(10)
	reg.Counter("untouched").Add(3)
	r := New(Options{Command: "test", Registry: reg})
	defer r.Close()
	reg.Counter("pre_existing").Add(5)
	reg.Counter("born_in_flight").Add(2)
	reg.Gauge("depth").Set(7)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, "unit test"); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	deltas := map[string]uint64{}
	for _, c := range d.Counters {
		deltas[c.Name] = c.Delta
	}
	if deltas["pre_existing"] != 5 {
		t.Errorf("pre_existing delta = %d, want 5", deltas["pre_existing"])
	}
	if deltas["born_in_flight"] != 2 {
		t.Errorf("born_in_flight delta = %d, want 2", deltas["born_in_flight"])
	}
	if _, ok := deltas["untouched"]; ok {
		t.Error("zero-delta counter appears in the dump")
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 7 {
		t.Errorf("gauges = %+v, want depth=7", d.Gauges)
	}
	if d.Reason != "unit test" || d.DumpedAt.IsZero() {
		t.Errorf("dump header reason/time wrong: %q %v", d.Reason, d.DumpedAt)
	}
}

func TestWatchdogAutoDumpPredicate(t *testing.T) {
	for _, tc := range []struct {
		ev   progress.Event
		want bool
	}{
		{progress.Event{Kind: progress.KindSimFailed, Err: "watchdog: killed"}, true},
		{progress.Event{Kind: progress.KindSimRetried, Err: "watchdog timeout"}, true},
		{progress.Event{Kind: progress.KindSimFailed, Err: "bad input"}, false},
		{progress.Event{Kind: progress.KindSimFinished, Err: "watchdog"}, false},
	} {
		if got := WatchdogAutoDump(tc.ev); got != tc.want {
			t.Errorf("WatchdogAutoDump(%+v) = %v, want %v", tc.ev, got, tc.want)
		}
	}
}
