// Package telemetry is the observability backbone of the harness: a
// dependency-free, race-safe metrics registry (counters, gauges, histograms
// with fixed exponential buckets, all optionally labeled) plus a lightweight
// span/event tracer that emits Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto.
//
// The package is built around two conventions:
//
//   - Nil is off. Every method on *Registry, *Tracer and the metric handles
//     they return is safe on a nil receiver and does nothing, so call sites
//     instrument unconditionally and the uninstrumented path stays
//     allocation-free (guarded by BenchmarkCoreTelemetryOff at the repo
//     root).
//
//   - Snapshots are stable. Snapshot() orders every metric by (name, sorted
//     labels) and WriteJSON marshals with a fixed field order, so two
//     snapshots of equal state are byte-identical — the property the
//     golden-file tests and `make profile` checker rely on.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension (experiment, config, workload...).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// canonical renders labels in sorted-key order; it is the registry's
// identity for a (name, labels) series.
func canonical(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Uint64
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Safe on nil.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Set stores v. Safe on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (may be negative). Safe on nil.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value. Safe on nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// SetMax raises the gauge to v if v is larger (a running peak). Safe on nil.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Registry holds all metric series. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is a valid no-op sink.
type Registry struct {
	mu     sync.Mutex
	series map[string]any // "kind\x00name\x00labels" -> *Counter | *Gauge | *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: map[string]any{}}
}

func seriesKey(kind, name string, labels []Label) string {
	return kind + "\x00" + name + "\x00" + canonical(labels)
}

// Counter returns (registering on first use) the counter series for
// name+labels. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := seriesKey("c", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.series[k]; ok {
		return m.(*Counter)
	}
	c := &Counter{name: name, labels: append([]Label(nil), labels...)}
	r.series[k] = c
	return c
}

// Gauge returns (registering on first use) the gauge series for name+labels.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := seriesKey("g", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.series[k]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{name: name, labels: append([]Label(nil), labels...)}
	r.series[k] = g
	return g
}

// Histogram returns (registering on first use) the histogram series for
// name+labels with the given bucket upper bounds (use ExpBuckets). Bounds are
// fixed at first registration; later calls with the same name+labels return
// the existing series regardless of the bounds argument. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := seriesKey("h", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.series[k]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(name, bounds, labels)
	r.series[k] = h
	return h
}
