package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// ExpBuckets returns n exponential bucket upper bounds start, start*factor,
// start*factor^2, ... — the fixed-bucket scheme every histogram in the
// harness uses. factor must be > 1 and start > 0; n must be >= 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default latency scale: 1µs .. ~67s in 26 doubling
// buckets, in seconds.
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 2, 26) }

// Histogram counts observations into fixed exponential buckets. An
// observation v lands in the first bucket whose upper bound satisfies
// v <= bound; values above the last bound land in the implicit +Inf
// overflow bucket.
type Histogram struct {
	name   string
	labels []Label
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(name string, bounds []float64, labels []Label) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		name:   name,
		labels: append([]Label(nil), labels...),
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
	}
}

// Observe records one value. Safe on nil and safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s returns the first index with bounds[i] >= v, which is
	// exactly the "v <= bound" bucket; v above every bound yields
	// len(bounds), the overflow slot.
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations. Safe on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. Safe on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}
