package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// TraceContext is the lightweight distributed-tracing identity that rides a
// work unit across process boundaries: a stable trace ID naming the unit's
// whole lifecycle plus the span ID of the hop that handed the unit over.
// The fabric coordinator mints one per work unit and propagates it through
// lease grants, so every process touching the unit — coordinator queue,
// worker execution, result merge — tags its telemetry and flight-recorder
// entries with the same trace ID.
//
// Trace IDs are deterministic where the unit is: a content-keyed simulation
// derives its trace ID from runner.ContentKey, so re-running the same sweep
// yields the same trace IDs and traces from separate runs of one point can
// be correlated offline.
type TraceContext struct {
	// TraceID is the 16-hex-digit identity shared by every span of the
	// unit's lifecycle.
	TraceID string `json:"trace_id"`
	// Parent is the span ID of the hop that propagated this context (the
	// lease span, for a unit handed to a worker). Empty at the trace root.
	Parent string `json:"parent_span,omitempty"`
}

// NewTraceContext mints a root trace context from a unit's stable identity.
// A 64-hex content key contributes its leading 16 digits directly (so the
// trace ID is a visible prefix of the content key); any other identity is
// hashed first. An empty identity yields an invalid (zero) context.
func NewTraceContext(identity string) TraceContext {
	if identity == "" {
		return TraceContext{}
	}
	if len(identity) >= 16 && isHex(identity[:16]) {
		return TraceContext{TraceID: identity[:16]}
	}
	sum := sha256.Sum256([]byte(identity))
	return TraceContext{TraceID: hex.EncodeToString(sum[:8])}
}

// Valid reports whether the context carries a trace ID.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// Child derives the context a hop hands downstream: same trace ID, with
// Parent set to the hop's own span ID.
func (tc TraceContext) Child(span string, n int) TraceContext {
	if !tc.Valid() {
		return tc
	}
	return TraceContext{TraceID: tc.TraceID, Parent: SpanID(tc.TraceID, span, n)}
}

// SpanID derives a deterministic 16-hex span ID from (trace, span name, n):
// the same lifecycle hop of the same unit always gets the same span ID, so
// independently-emitted trace fragments agree without coordination.
func SpanID(traceID, name string, n int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d", traceID, name, n)))
	return hex.EncodeToString(sum[:8])
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
