package telemetry

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic is the exported form of the registry/tracer atomic-write
// primitive, for callers (the fabric's merged fleet trace, the flight
// recorder's post-mortem dump) that produce observability artifacts outside
// this package but need the same never-truncated guarantee.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return writeFileAtomic(path, write)
}

// writeFileAtomic writes a file by streaming into a temp file in the target's
// directory and renaming it over path, so readers (and post-mortem
// inspection after SIGINT or a watchdog-degraded run) only ever observe the
// previous complete file or the new complete file — never a truncated one.
// On any error the temp file is removed and path is left untouched.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".p10-atomic-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	// CreateTemp opens 0600; published artifacts keep the conventional 0644
	// (subject to umask-free chmod, since rename preserves the temp mode).
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
