package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// registering, incrementing and snapshotting concurrently — and checks the
// final totals. Run under -race (make verify does) to prove the registry is
// race-safe.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Same series from every goroutine: registration must be
				// idempotent and increments atomic.
				reg.Counter("ops_total", L("kind", "shared")).Inc()
				reg.Gauge("inflight").Add(1)
				reg.Gauge("inflight").Add(-1)
				reg.Histogram("latency_seconds", DurationBuckets()).Observe(float64(i%7) * 1e-5)
				if i%100 == 0 {
					_ = reg.Snapshot() // snapshots race against writers
				}
			}
		}(g)
	}
	wg.Wait()

	if got := reg.Counter("ops_total", L("kind", "shared")).Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("inflight").Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	h := reg.Histogram("latency_seconds", DurationBuckets())
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var bucketSum uint64
	snap := reg.Snapshot()
	for _, hs := range snap.Histograms {
		for _, b := range hs.Buckets {
			bucketSum += b.Count
		}
	}
	if bucketSum != goroutines*perG {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, goroutines*perG)
	}
}

// TestNilRegistryIsNoOp: the whole API must be callable through nil so
// uninstrumented call sites need no branching.
func TestNilRegistryIsNoOp(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(1)
	reg.Gauge("g").Add(2)
	reg.Gauge("g").SetMax(9)
	reg.Histogram("h", DurationBuckets()).Observe(0.5)
	if v := reg.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := reg.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %v", v)
	}
	if n := reg.Histogram("h", nil).Count(); n != 0 {
		t.Errorf("nil histogram count = %d", n)
	}
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestSnapshotSorted: series come out ordered by (name, canonical labels)
// regardless of registration order, and label order within a call does not
// create distinct series.
func TestSnapshotSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta").Inc()
	reg.Counter("alpha", L("exp", "fig5")).Inc()
	reg.Counter("alpha", L("exp", "fig4")).Inc()
	reg.Counter("alpha", L("workload", "w"), L("exp", "fig4")).Inc()
	// Same series, labels given in a different order.
	reg.Counter("alpha", L("exp", "fig4"), L("workload", "w")).Inc()

	s := reg.Snapshot()
	if len(s.Counters) != 4 {
		t.Fatalf("got %d counter series, want 4", len(s.Counters))
	}
	wantOrder := []string{"alpha", "alpha", "alpha", "zeta"}
	for i, c := range s.Counters {
		if c.Name != wantOrder[i] {
			t.Errorf("series %d name = %q, want %q", i, c.Name, wantOrder[i])
		}
	}
	// The label-order-insensitive series accumulated both increments.
	for _, c := range s.Counters {
		if c.Labels["workload"] == "w" && c.Value != 2 {
			t.Errorf("label-canonicalized series value = %d, want 2", c.Value)
		}
	}
	if s.Counters[0].Labels["exp"] != "fig4" || s.Counters[1].Labels["exp"] != "fig4" || s.Counters[2].Labels["exp"] != "fig5" {
		t.Errorf("label sort order wrong: %+v", s.Counters)
	}
}

// TestGaugeSetMax tracks a running peak.
func TestGaugeSetMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("peak")
	for _, v := range []float64{3, 7, 2, 7, 5} {
		g.SetMax(v)
	}
	if got := g.Value(); got != 7 {
		t.Errorf("peak = %v, want 7", got)
	}
}
