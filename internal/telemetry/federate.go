package telemetry

import "sort"

// Metrics federation: the coordinator of a distributed sweep merges the
// telemetry snapshots its workers push over the fabric protocol into its own
// registry snapshot, so one /metrics scrape shows the whole fleet.
//
// The merge happens at the snapshot level on purpose: worker counters are
// monotonic only within that worker's process, so folding them into live
// coordinator series would break monotonicity whenever a worker restarts.
// A snapshot merge is a pure function of its inputs and re-derives the fleet
// aggregates from scratch every time.

const (
	// WorkerLabelKey is the label added to every federated worker series.
	WorkerLabelKey = "worker"
	// FleetLabelValue marks the cross-worker aggregate series.
	FleetLabelValue = "fleet"
)

// Federate merges per-worker registry snapshots into the local one:
//
//   - Local series pass through unchanged (the coordinator's own telemetry
//     stays unlabeled, exactly as a single-process run would render it).
//   - Every worker series is re-emitted with a worker=<name> label, so
//     per-worker behavior stays distinguishable after the merge.
//   - Cross-worker aggregates are emitted with worker="fleet": counters sum,
//     histograms merge bucket-wise (only across workers whose bucket bounds
//     agree — mismatched series are skipped rather than mis-merged). Gauges
//     get no fleet aggregate: summing a last-seen value is rarely meaningful.
//
// The result obeys the Snapshot ordering contract (sorted by name then
// canonical labels within each kind), so federated output passes the same
// structural validation as a plain snapshot. With no workers the local
// snapshot is returned unchanged.
func Federate(local Snapshot, workers map[string]Snapshot) Snapshot {
	if len(workers) == 0 {
		return local
	}
	out := Snapshot{
		Counters:   append([]CounterSnapshot{}, local.Counters...),
		Gauges:     append([]GaugeSnapshot{}, local.Gauges...),
		Histograms: append([]HistogramSnapshot{}, local.Histograms...),
	}
	names := make([]string, 0, len(workers))
	for name := range workers {
		names = append(names, name)
	}
	sort.Strings(names)

	ctrSum := map[string]*CounterSnapshot{}
	var ctrOrder []string
	histSum := map[string]*HistogramSnapshot{}
	var histOrder []string
	for _, name := range names {
		ws := workers[name]
		for _, c := range ws.Counters {
			out.Counters = append(out.Counters, CounterSnapshot{
				Name: c.Name, Labels: withLabel(c.Labels, WorkerLabelKey, name), Value: c.Value,
			})
			k := mergeKey(c.Name, c.Labels)
			if agg, ok := ctrSum[k]; ok {
				agg.Value += c.Value
			} else {
				ctrSum[k] = &CounterSnapshot{
					Name: c.Name, Labels: withLabel(c.Labels, WorkerLabelKey, FleetLabelValue), Value: c.Value,
				}
				ctrOrder = append(ctrOrder, k)
			}
		}
		for _, g := range ws.Gauges {
			out.Gauges = append(out.Gauges, GaugeSnapshot{
				Name: g.Name, Labels: withLabel(g.Labels, WorkerLabelKey, name), Value: g.Value,
			})
		}
		for _, h := range ws.Histograms {
			hc := HistogramSnapshot{
				Name: h.Name, Labels: withLabel(h.Labels, WorkerLabelKey, name),
				Count: h.Count, Sum: h.Sum,
				Buckets: append([]BucketSnapshot{}, h.Buckets...),
			}
			out.Histograms = append(out.Histograms, hc)
			k := mergeKey(h.Name, h.Labels)
			if agg, ok := histSum[k]; ok {
				if sameBounds(agg.Buckets, h.Buckets) {
					agg.Count += h.Count
					agg.Sum += h.Sum
					for i := range agg.Buckets {
						agg.Buckets[i].Count += h.Buckets[i].Count
					}
				}
				// Mismatched bounds: leave the aggregate as-is; the per-worker
				// series above still carries the data.
			} else {
				histSum[k] = &HistogramSnapshot{
					Name: h.Name, Labels: withLabel(h.Labels, WorkerLabelKey, FleetLabelValue),
					Count: h.Count, Sum: h.Sum,
					Buckets: append([]BucketSnapshot{}, h.Buckets...),
				}
				histOrder = append(histOrder, k)
			}
		}
	}
	for _, k := range ctrOrder {
		out.Counters = append(out.Counters, *ctrSum[k])
	}
	for _, k := range histOrder {
		out.Histograms = append(out.Histograms, *histSum[k])
	}

	sortKey := func(name string, labels map[string]string) string {
		ls := make([]Label, 0, len(labels))
		for k, v := range labels {
			ls = append(ls, Label{k, v})
		}
		return name + "\x00" + canonical(ls)
	}
	sort.SliceStable(out.Counters, func(i, j int) bool {
		return sortKey(out.Counters[i].Name, out.Counters[i].Labels) < sortKey(out.Counters[j].Name, out.Counters[j].Labels)
	})
	sort.SliceStable(out.Gauges, func(i, j int) bool {
		return sortKey(out.Gauges[i].Name, out.Gauges[i].Labels) < sortKey(out.Gauges[j].Name, out.Gauges[j].Labels)
	})
	sort.SliceStable(out.Histograms, func(i, j int) bool {
		return sortKey(out.Histograms[i].Name, out.Histograms[i].Labels) < sortKey(out.Histograms[j].Name, out.Histograms[j].Labels)
	})
	return out
}

// mergeKey identifies a series across workers by name + labels (ignoring the
// worker label the merge itself adds).
func mergeKey(name string, labels map[string]string) string {
	ls := make([]Label, 0, len(labels))
	for k, v := range labels {
		if k == WorkerLabelKey {
			continue
		}
		ls = append(ls, Label{k, v})
	}
	return name + "\x00" + canonical(ls)
}

// withLabel copies a label map with one key set (the input map is never
// mutated: snapshots are shared read-only values).
func withLabel(labels map[string]string, key, value string) map[string]string {
	m := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		m[k] = v
	}
	m[key] = value
	return m
}

// sameBounds reports whether two bucket layouts are mergeable: equal length
// with pairwise-equal upper bounds (+Inf compares equal to +Inf).
func sameBounds(a, b []BucketSnapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].UpperBound != b[i].UpperBound {
			return false
		}
	}
	return true
}
