package telemetry

import (
	"math"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Error("invalid parameters should return nil bounds")
	}
}

// TestHistogramBucketBoundaries pins the bucket assignment rule
// (v <= bound, first match) exactly at and around every boundary.
func TestHistogramBucketBoundaries(t *testing.T) {
	// Bounds 1, 2, 4, 8 plus the implicit +Inf overflow bucket.
	cases := []struct {
		v    float64
		want int // bucket index the observation must land in
	}{
		{-1, 0},                   // below the scale clamps into the first bucket
		{0, 0},                    //
		{0.5, 0},                  //
		{1, 0},                    // exactly on a bound: inclusive upper edge
		{math.Nextafter(1, 2), 1}, // just above a bound: next bucket
		{1.5, 1},                  //
		{2, 1},                    //
		{3, 2},                    //
		{4, 2},                    //
		{7.999, 3},                //
		{8, 3},                    // last finite bound, inclusive
		{math.Nextafter(8, 9), 4}, // above every bound: overflow
		{1e9, 4},                  //
	}
	for _, c := range cases {
		reg := NewRegistry()
		h := reg.Histogram("h", ExpBuckets(1, 2, 4))
		h.Observe(c.v)
		snap := reg.Snapshot()
		hs := snap.Histograms[0]
		if len(hs.Buckets) != 5 {
			t.Fatalf("bucket count = %d, want 5", len(hs.Buckets))
		}
		for i, b := range hs.Buckets {
			want := uint64(0)
			if i == c.want {
				want = 1
			}
			if b.Count != want {
				t.Errorf("Observe(%v): bucket %d count = %d, want %d", c.v, i, b.Count, want)
			}
		}
		if hs.Count != 1 {
			t.Errorf("Observe(%v): count = %d, want 1", c.v, hs.Count)
		}
		if hs.Sum != c.v {
			t.Errorf("Observe(%v): sum = %v", c.v, hs.Sum)
		}
	}
}

func TestHistogramSumAndOverflowBound(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", ExpBuckets(1, 2, 3))
	for _, v := range []float64{0.5, 1.5, 100} {
		h.Observe(v)
	}
	if got, want := h.Sum(), 102.0; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	snap := reg.Snapshot()
	last := snap.Histograms[0].Buckets[len(snap.Histograms[0].Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) {
		t.Errorf("overflow bound = %v, want +Inf", last.UpperBound)
	}
	if last.Count != 1 {
		t.Errorf("overflow count = %d, want 1", last.Count)
	}
}
