package telemetry

import (
	"math"
	"reflect"
	"testing"
)

func snapOf(fill func(*Registry)) Snapshot {
	r := NewRegistry()
	fill(r)
	return r.Snapshot()
}

// TestFederateNoWorkersIsIdentity pins the byte-identical contract: a
// coordinator with no worker snapshots must scrape exactly like a
// single-process run.
func TestFederateNoWorkersIsIdentity(t *testing.T) {
	local := snapOf(func(r *Registry) {
		r.Counter("sims_total").Add(3)
		r.Gauge("queue_depth").Set(2)
	})
	got := Federate(local, nil)
	if !reflect.DeepEqual(got, local) {
		t.Fatalf("Federate with no workers altered the snapshot:\n got %+v\nwant %+v", got, local)
	}
}

func TestFederateLabelsAndAggregates(t *testing.T) {
	local := snapOf(func(r *Registry) {
		r.Counter("fabric_units_completed_total").Add(4)
	})
	wa := snapOf(func(r *Registry) {
		r.Counter("sims_total", L("config", "POWER10")).Add(2)
		r.Gauge("pool_busy").Set(1)
		r.Histogram("run_seconds", []float64{1, 10}).Observe(0.5)
	})
	wb := snapOf(func(r *Registry) {
		r.Counter("sims_total", L("config", "POWER10")).Add(5)
		r.Histogram("run_seconds", []float64{1, 10}).Observe(3)
	})
	out := Federate(local, map[string]Snapshot{"alpha": wa, "beta": wb})

	counter := func(name, worker string) (uint64, bool) {
		for _, c := range out.Counters {
			if c.Name == name && c.Labels[WorkerLabelKey] == worker {
				return c.Value, true
			}
		}
		return 0, false
	}
	// Local series pass through unlabeled.
	if v, ok := counter("fabric_units_completed_total", ""); !ok || v != 4 {
		t.Errorf("local counter = %d, %v; want 4 unlabeled", v, ok)
	}
	// Per-worker series keep their values under worker=<name>.
	if v, ok := counter("sims_total", "alpha"); !ok || v != 2 {
		t.Errorf("alpha sims_total = %d, %v; want 2", v, ok)
	}
	if v, ok := counter("sims_total", "beta"); !ok || v != 5 {
		t.Errorf("beta sims_total = %d, %v; want 5", v, ok)
	}
	// The fleet aggregate sums across workers.
	if v, ok := counter("sims_total", FleetLabelValue); !ok || v != 7 {
		t.Errorf("fleet sims_total = %d, %v; want 7", v, ok)
	}
	// Gauges get per-worker series but no fleet sum.
	var gaugeWorkers []string
	for _, g := range out.Gauges {
		if g.Name == "pool_busy" {
			gaugeWorkers = append(gaugeWorkers, g.Labels[WorkerLabelKey])
		}
	}
	if !reflect.DeepEqual(gaugeWorkers, []string{"alpha"}) {
		t.Errorf("pool_busy worker labels = %v, want [alpha] only (no fleet gauge)", gaugeWorkers)
	}
	// Same-bounds histograms merge bucket-wise into the fleet series.
	for _, h := range out.Histograms {
		if h.Name != "run_seconds" || h.Labels[WorkerLabelKey] != FleetLabelValue {
			continue
		}
		if h.Count != 2 || h.Sum != 3.5 {
			t.Errorf("fleet run_seconds count/sum = %d/%v, want 2/3.5", h.Count, h.Sum)
		}
		var counts []uint64
		for _, b := range h.Buckets {
			counts = append(counts, b.Count)
		}
		if !reflect.DeepEqual(counts, []uint64{1, 1, 0}) {
			t.Errorf("fleet run_seconds buckets = %v, want [1 1 0]", counts)
		}
		return
	}
	t.Fatal("no worker=fleet aggregate for run_seconds")
}

// TestFederateMismatchedHistogramBounds: workers that disagree on bucket
// layout keep their per-worker series but must not be mis-merged into one
// aggregate.
func TestFederateMismatchedHistogramBounds(t *testing.T) {
	wa := snapOf(func(r *Registry) { r.Histogram("h", []float64{1}).Observe(0.5) })
	wb := snapOf(func(r *Registry) { r.Histogram("h", []float64{1, 2}).Observe(0.5) })
	out := Federate(Snapshot{}, map[string]Snapshot{"a": wa, "b": wb})
	for _, h := range out.Histograms {
		if h.Labels[WorkerLabelKey] == FleetLabelValue && h.Count != 1 {
			t.Errorf("fleet aggregate absorbed mismatched bounds: count = %d, want 1 (first worker only)", h.Count)
		}
	}
}

// TestFederateOutputSorted: federated output must satisfy the same ordering
// contract as a plain snapshot, or p10obscheck -metrics rejects it.
func TestFederateOutputSorted(t *testing.T) {
	wa := snapOf(func(r *Registry) {
		r.Counter("zzz").Add(1)
		r.Counter("aaa").Add(1)
	})
	wb := snapOf(func(r *Registry) { r.Counter("mmm").Add(1) })
	local := snapOf(func(r *Registry) { r.Counter("nnn").Add(1) })
	out := Federate(local, map[string]Snapshot{"w2": wb, "w1": wa})
	key := func(c CounterSnapshot) string {
		ls := make([]Label, 0, len(c.Labels))
		for k, v := range c.Labels {
			ls = append(ls, Label{k, v})
		}
		return c.Name + "\x00" + canonical(ls)
	}
	for i := 1; i < len(out.Counters); i++ {
		if key(out.Counters[i]) < key(out.Counters[i-1]) {
			t.Fatalf("counters out of order: %q after %q", key(out.Counters[i]), key(out.Counters[i-1]))
		}
	}
	// The +Inf overflow bucket must still compare equal across snapshots.
	if !sameBounds(
		[]BucketSnapshot{{UpperBound: math.Inf(1)}},
		[]BucketSnapshot{{UpperBound: math.Inf(1)}}) {
		t.Error("+Inf bounds do not compare equal")
	}
}
