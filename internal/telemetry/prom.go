package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric family followed by
// its samples, label values escaped per the spec, histogram buckets emitted
// cumulatively with a trailing `+Inf` bucket plus `_sum` and `_count`
// series. Families and samples appear in the snapshot's sorted order, so
// output is deterministic for deterministic state.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := &errWriter{w: w}
	emitType := func(last *string, name, kind string) {
		if *last != name {
			fmt.Fprintf(bw, "# TYPE %s %s\n", name, kind)
			*last = name
		}
	}
	var last string
	for _, c := range s.Counters {
		emitType(&last, c.Name, "counter")
		fmt.Fprintf(bw, "%s%s %d\n", c.Name, promLabels(c.Labels, "", ""), c.Value)
	}
	last = ""
	for _, g := range s.Gauges {
		emitType(&last, g.Name, "gauge")
		fmt.Fprintf(bw, "%s%s %s\n", g.Name, promLabels(g.Labels, "", ""), promFloat(g.Value))
	}
	last = ""
	for _, h := range s.Histograms {
		emitType(&last, h.Name, "histogram")
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = promFloat(b.UpperBound)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", le), cum)
		}
		fmt.Fprintf(bw, "%s_sum%s %s\n", h.Name, promLabels(h.Labels, "", ""), promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", ""), h.Count)
	}
	return bw.err
}

// WritePrometheus renders the registry's current state; see the package-level
// WritePrometheus. Safe on nil: the empty snapshot renders zero families.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}

// promLabels renders a label set as {k="v",...} in sorted-key order, with
// extraKey/extraValue appended when extraKey is non-empty (the histogram
// `le` label). Returns "" for an empty set.
func promLabels(labels map[string]string, extraKey, extraValue string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(promEscape(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(promEscape(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the exposition format: backslash,
// double quote, and newline.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promFloat renders a float sample value ('g' keeps integers clean and
// avoids locale issues; NaN/Inf render in Prometheus' spelling).
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter latches the first write error so the renderer can use Fprintf
// freely and report once.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
