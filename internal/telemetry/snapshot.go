package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
)

// CounterSnapshot is one counter series' state.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugeSnapshot is one gauge series' state.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// BucketSnapshot is one histogram bucket: the count of observations v with
// prevBound < v <= UpperBound. The overflow bucket has UpperBound +Inf,
// marshaled as the string "+Inf" (JSON has no infinity literal).
type BucketSnapshot struct {
	UpperBound float64 `json:"-"`
	Count      uint64  `json:"count"`
}

// MarshalJSON emits {"le": bound, "count": n} with "+Inf" for the overflow
// bucket so the output is valid JSON.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	type out struct {
		Le    any    `json:"le"`
		Count uint64 `json:"count"`
	}
	le := any(b.UpperBound)
	if b.UpperBound > maxFinite {
		le = "+Inf"
	}
	return json.Marshal(out{Le: le, Count: b.Count})
}

const maxFinite = 1.7976931348623157e308 / 2

// HistogramSnapshot is one histogram series' state.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []BucketSnapshot  `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, ordered by
// (name, canonical labels) within each kind.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot copies the registry's current state. Safe on nil (returns an
// empty snapshot). The result is deterministic for deterministic state:
// series are sorted by name then canonical labels.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	series := make([]any, 0, len(r.series))
	for _, m := range r.series {
		series = append(series, m)
	}
	r.mu.Unlock()
	for _, m := range series {
		switch m := m.(type) {
		case *Counter:
			s.Counters = append(s.Counters, CounterSnapshot{
				Name: m.name, Labels: labelMap(m.labels), Value: m.Value(),
			})
		case *Gauge:
			s.Gauges = append(s.Gauges, GaugeSnapshot{
				Name: m.name, Labels: labelMap(m.labels), Value: m.Value(),
			})
		case *Histogram:
			hs := HistogramSnapshot{
				Name: m.name, Labels: labelMap(m.labels),
				Count: m.Count(), Sum: m.Sum(),
				Buckets: make([]BucketSnapshot, len(m.counts)),
			}
			for i := range m.counts {
				ub := math.Inf(1) // overflow slot
				if i < len(m.bounds) {
					ub = m.bounds[i]
				}
				hs.Buckets[i] = BucketSnapshot{UpperBound: ub, Count: m.counts[i].Load()}
			}
			s.Histograms = append(s.Histograms, hs)
		}
	}
	key := func(name string, labels map[string]string) string {
		ls := make([]Label, 0, len(labels))
		for k, v := range labels {
			ls = append(ls, Label{k, v})
		}
		return name + "\x00" + canonical(ls)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return key(s.Counters[i].Name, s.Counters[i].Labels) < key(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return key(s.Gauges[i].Name, s.Gauges[i].Labels) < key(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return key(s.Histograms[i].Name, s.Histograms[i].Labels) < key(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

// WriteJSON writes the snapshot as indented JSON with stable key order
// (struct fields are fixed; label maps marshal with sorted keys).
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile dumps the snapshot JSON to path atomically, the same guarantee
// Registry.WriteFile gives; callers use it for derived snapshots (the
// coordinator's federated fleet view) that never lived in one registry.
func (s Snapshot) WriteFile(path string) error {
	return writeFileAtomic(path, s.WriteJSON)
}

// WriteJSON writes the registry snapshot as indented JSON with stable key
// order (struct fields are fixed; label maps marshal with sorted keys).
// Safe on nil: writes an empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteFile dumps the snapshot JSON to path atomically (temp file in the
// target directory, then rename), so an interrupted or degraded run can
// never leave a truncated snapshot behind. Safe on nil registries only in
// the sense that an empty snapshot is written; callers normally gate on the
// flag that created the registry.
func (r *Registry) WriteFile(path string) error {
	return writeFileAtomic(path, r.WriteJSON)
}
