package telemetry

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", L("exp", "fig5")).Add(3)
	r.Counter("runs_total", L("exp", "tableI")).Add(1)
	r.Counter("hits_total").Add(7)
	r.Gauge("workers_busy").Set(2)
	r.Gauge("ipc", L("workload", "daxpy")).Set(1.25)
	h := r.Histogram("latency_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# TYPE hits_total counter
hits_total 7
# TYPE runs_total counter
runs_total{exp="fig5"} 3
runs_total{exp="tableI"} 1
# TYPE ipc gauge
ipc{workload="daxpy"} 1.25
# TYPE workers_busy gauge
workers_busy 2
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="10"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 100.55
latency_seconds_count 3
`
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("odd_total", L("k", "a\\b\"c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `odd_total{k="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition %q missing escaped sample %q", buf.String(), want)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry rendered %q", buf.String())
	}
}

func TestWritePrometheusCumulativeBucketsMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", ExpBuckets(0.001, 4, 10))
	for _, v := range []float64{0.0001, 0.01, 0.01, 3, 1e6} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	var infSeen bool
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "h_seconds_bucket") {
			continue
		}
		var v uint64
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad bucket line %q", line)
		}
		for _, ch := range fields[1] {
			v = v*10 + uint64(ch-'0')
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if v != 5 {
				t.Errorf("+Inf bucket = %d, want 5", v)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket emitted")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	r := NewRegistry()
	r.Counter("a_total").Inc()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with new state: readers must see old-complete or
	// new-complete, and afterwards the new content.
	r.Counter("a_total").Inc()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"value": 2`) {
		t.Errorf("rewritten file stale:\n%s", b)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", fi.Mode().Perm())
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileAtomicTracer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	tr := NewTracerWithClock(func() int64 { return 0 })
	tr.Instant("x", "test")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "traceEvents") {
		t.Errorf("trace file malformed:\n%s", b)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileAtomicFailureLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old-complete"), 0o644); err != nil {
		t.Fatal(err)
	}
	errBoom := os.ErrInvalid
	err := writeFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return errBoom
	})
	if err != errBoom {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "old-complete" {
		t.Errorf("failed write clobbered the old file: %q", b)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileAtomicMissingDirFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	r := NewRegistry()
	if err := r.WriteFile(path); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".p10-atomic-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}
