package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one Chrome trace_event record. Field order is fixed by the struct
// so marshaled output is stable. Args values must be JSON-marshalable;
// counter tracks use map[string]float64 (encoding/json sorts map keys).
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace-file process ids: wall-clock spans/counters live in PidWall,
// simulation-cycle counter tracks in PidSimCycles (1 cycle rendered as 1µs),
// so the two time domains don't overlap in the viewer.
const (
	PidWall      = 0
	PidSimCycles = 1
)

// Tracer accumulates trace events in memory and writes them as a Chrome
// trace_event JSON object. A nil *Tracer is a valid no-op sink: Begin
// returns an inert Span and every other method returns immediately.
type Tracer struct {
	now func() int64 // microseconds since trace start

	mu     sync.Mutex
	events []Event
	lanes  []bool // tid occupancy for concurrent spans
}

// NewTracer creates a tracer timestamping events with wall-clock
// microseconds since creation.
func NewTracer() *Tracer {
	start := time.Now()
	return &Tracer{now: func() int64 { return time.Since(start).Microseconds() }}
}

// NewTracerWithClock creates a tracer with a caller-supplied microsecond
// clock — the hook the deterministic golden-file tests use.
func NewTracerWithClock(now func() int64) *Tracer {
	return &Tracer{now: now}
}

// Span is one in-flight duration slice; close it with End. The zero Span
// (from a nil tracer) is inert.
type Span struct {
	t    *Tracer
	name string
	cat  string
	ts   int64
	tid  int
}

// Begin opens a span. Concurrent spans are assigned distinct tid lanes so
// overlapping work renders as parallel tracks rather than false nesting.
// Safe on nil (returns an inert Span).
func (t *Tracer) Begin(name, cat string) Span {
	if t == nil {
		return Span{}
	}
	ts := t.now()
	t.mu.Lock()
	tid := -1
	for i, busy := range t.lanes {
		if !busy {
			tid = i
			break
		}
	}
	if tid < 0 {
		tid = len(t.lanes)
		t.lanes = append(t.lanes, false)
	}
	t.lanes[tid] = true
	t.mu.Unlock()
	return Span{t: t, name: name, cat: cat, ts: ts, tid: tid}
}

// End closes the span, emitting a complete ("X") event. Safe on the zero
// Span and idempotent only in the no-op case; call once per Begin.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.now()
	dur := end - s.ts
	if dur < 1 {
		dur = 1 // chrome://tracing drops zero-width slices
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, Event{
		Name: s.name, Cat: s.cat, Ph: "X", Ts: s.ts, Dur: dur,
		Pid: PidWall, Tid: s.tid,
	})
	s.t.lanes[s.tid] = false
	s.t.mu.Unlock()
}

// Counter emits a counter-track sample in the wall-clock domain. Safe on nil.
func (t *Tracer) Counter(name string, values map[string]float64) {
	if t == nil {
		return
	}
	t.counterAt(PidWall, t.now(), name, values)
}

// CounterAt emits a counter-track sample in the simulation-cycle domain at
// timestamp ts (one cycle = one trace microsecond). Safe on nil.
func (t *Tracer) CounterAt(ts int64, name string, values map[string]float64) {
	if t == nil {
		return
	}
	t.counterAt(PidSimCycles, ts, name, values)
}

func (t *Tracer) counterAt(pid int, ts int64, name string, values map[string]float64) {
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Name: name, Ph: "C", Ts: ts, Pid: pid, Tid: 0, Args: args})
	t.mu.Unlock()
}

// Instant emits an instant ("i") event in the wall-clock domain. Safe on nil.
func (t *Tracer) Instant(name, cat string) {
	if t == nil {
		return
	}
	ts := t.now()
	t.mu.Lock()
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: "i", Ts: ts, Pid: PidWall, Tid: 0})
	t.mu.Unlock()
}

// Len returns the number of buffered events. Safe on nil.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the top-level Chrome trace JSON object.
type traceFile struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []Event `json:"traceEvents"`
}

// WriteJSON writes the buffered events as a Chrome trace_event file. Events
// are ordered by (ts, insertion order) and prefixed with process-name
// metadata, so output is deterministic for a deterministic clock. Safe on
// nil: writes an empty trace. The tracer remains usable afterwards.
func (t *Tracer) WriteJSON(w io.Writer) error {
	evs := []Event{
		{Name: "process_name", Ph: "M", Pid: PidWall, Args: map[string]any{"name": "harness (wall clock)"}},
		{Name: "process_name", Ph: "M", Pid: PidSimCycles, Args: map[string]any{"name": "core simulation (cycles as µs)"}},
	}
	if t != nil {
		t.mu.Lock()
		body := append([]Event(nil), t.events...)
		t.mu.Unlock()
		sort.SliceStable(body, func(i, j int) bool { return body[i].Ts < body[j].Ts })
		evs = append(evs, body...)
	}
	b, err := json.MarshalIndent(traceFile{DisplayTimeUnit: "ms", TraceEvents: evs}, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile dumps the trace JSON to path atomically (temp file in the
// target directory, then rename), matching Registry.WriteFile's guarantee
// that interrupted runs never leave truncated artifacts.
func (t *Tracer) WriteFile(path string) error {
	return writeFileAtomic(path, t.WriteJSON)
}

// WriteChromeTrace writes a caller-assembled event set as a Chrome
// trace_event file: process-name metadata for each pid in procNames
// (emitted in pid order), then the events sorted stably by timestamp. It is
// the serialization half of Tracer.WriteJSON factored out for producers —
// the fabric coordinator's merged fleet trace — that build their event set
// from cross-process lifecycle records rather than live spans.
func WriteChromeTrace(w io.Writer, procNames map[int]string, evs []Event) error {
	pids := make([]int, 0, len(procNames))
	for pid := range procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	out := make([]Event, 0, len(pids)+len(evs))
	for _, pid := range pids {
		out = append(out, Event{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": procNames[pid]}})
	}
	body := append([]Event(nil), evs...)
	sort.SliceStable(body, func(i, j int) bool {
		// Metadata records (thread names) sort ahead of same-timestamp spans
		// so viewers resolve lane names before drawing into them.
		if body[i].Ts != body[j].Ts {
			return body[i].Ts < body[j].Ts
		}
		return body[i].Ph == "M" && body[j].Ph != "M"
	})
	out = append(out, body...)
	b, err := json.MarshalIndent(traceFile{DisplayTimeUnit: "ms", TraceEvents: out}, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
