package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock is a deterministic microsecond clock advancing a fixed step per
// reading.
func fakeClock(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

// buildDeterministicTrace exercises every event kind with the fake clock.
func buildDeterministicTrace() *Tracer {
	tr := NewTracerWithClock(fakeClock(10))
	sp := tr.Begin("exp:fig5", "experiment")
	inner := tr.Begin("sim:dgemm-mma@POWER10/smt1", "runner")
	inner.End()
	tr.Counter("runner", map[string]float64{"hits": 3, "misses": 1})
	tr.CounterAt(500, "power", map[string]float64{"total": 1.25, "clock": 0.5})
	tr.CounterAt(1000, "ipc", map[string]float64{"ipc": 2.5})
	tr.Instant("sweep-done", "harness")
	sp.End()
	return tr
}

// TestTraceGolden locks the Chrome trace output byte-for-byte: the format
// must be stable across runs (and refactors) because external tooling —
// chrome://tracing, Perfetto, cmd/p10obscheck — consumes it.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildDeterministicTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from golden file %s\ngot:\n%s", golden, buf.String())
	}

	// A second build must produce identical bytes (stability across runs).
	var buf2 bytes.Buffer
	if err := buildDeterministicTrace().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two identical trace builds produced different bytes")
	}
}

// TestTraceValidJSON checks structural validity: parseable, the required
// trace_event fields present, spans carry positive durations, and concurrent
// spans get distinct tid lanes.
func TestTraceValidJSON(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(7))
	a := tr.Begin("outer", "t")
	b := tr.Begin("overlapping", "t")
	if a.tid == b.tid {
		t.Errorf("concurrent spans share tid %d", a.tid)
	}
	b.End()
	c := tr.Begin("reuses-lane", "t")
	if c.tid != b.tid {
		t.Errorf("freed lane not reused: got %d, want %d", c.tid, b.tid)
	}
	c.End()
	a.End()
	tr.Counter("track", map[string]float64{"v": 1})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace output is not valid JSON")
	}
	var tf struct {
		DisplayTimeUnit string  `json:"displayTimeUnit"`
		TraceEvents     []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	var spans, counters, meta int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 1 {
				t.Errorf("span %q has dur %d", e.Name, e.Dur)
			}
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if spans != 3 || counters != 1 || meta != 2 {
		t.Errorf("event mix = %d spans, %d counters, %d meta; want 3/1/2", spans, counters, meta)
	}
}

// TestNilTracerIsNoOp: the nil fast path must be inert end to end.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", "y")
	sp.End()
	tr.Counter("c", map[string]float64{"v": 1})
	tr.CounterAt(5, "c", nil)
	tr.Instant("i", "")
	if tr.Len() != 0 {
		t.Error("nil tracer accumulated events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("nil tracer output invalid")
	}
}
