// ridge.go is the surrogate-grade half of mlfit: a Householder-QR least
// squares core shared with the classic LinearModel path, plus RidgeModel — a
// standardized ridge regression with leave-one-out cross-validation (exact,
// via the hat-matrix diagonal), greedy forward feature selection scored by
// LOO error, and leverage-based per-prediction uncertainty. RidgeModel is
// fully exported-field so it serializes to JSON and reloads with bit-identical
// predictions (encoding/json round-trips float64 exactly).
package mlfit

import (
	"errors"
	"fmt"
	"math"
)

const (
	// ridgeJitter is the minimum effective ridge on every column (including
	// a requested ridge of zero): it keeps exactly collinear columns
	// solvable, matching the historical normal-equations jitter.
	ridgeJitter = 1e-9
	// condLimit is the R-diagonal ratio beyond which the system is reported
	// singular rather than silently solved with garbage digits.
	condLimit = 1e14
	// hatFloor bounds 1-h away from zero in the LOO residual e/(1-h): a
	// leverage of exactly 1 means the point is only explained by itself.
	hatFloor = 1e-8
	// selectMinGain is the relative LOO-RMSE improvement a new feature must
	// deliver for forward selection to keep it.
	selectMinGain = 1e-3
)

// DefaultLambdas is the ridge grid FitRidgeCV searches when the caller does
// not supply one. Features are standardized, so the scale is data-independent.
var DefaultLambdas = []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// qrLS solves the dense least-squares problem min ||a x - b||_2 in place by
// Householder QR: a is m rows by n columns with m >= n, b has length m. On
// return a's upper triangle (with rdiag on the diagonal) is the R factor and
// the returned r is an explicit n-by-n upper-triangular copy of it. The
// factorization fails with "mlfit: singular system" when R's diagonal ratio
// exceeds condLimit (rank deficiency the caller's ridge did not cover).
func qrLS(a [][]float64, b []float64, n int) (x []float64, r [][]float64, err error) {
	m := len(a)
	if m < n || len(b) != m {
		return nil, nil, errors.New("mlfit: bad least-squares dimensions")
	}
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Column norm below the diagonal, accumulated with hypot for range.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, a[i][k])
		}
		if nrm != 0 {
			if a[k][k] < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				a[i][k] /= nrm
			}
			a[k][k] += 1
			// Apply the reflection to the remaining columns and to b.
			for j := k + 1; j < n; j++ {
				s := 0.0
				for i := k; i < m; i++ {
					s += a[i][k] * a[i][j]
				}
				s = -s / a[k][k]
				for i := k; i < m; i++ {
					a[i][j] += s * a[i][k]
				}
			}
			s := 0.0
			for i := k; i < m; i++ {
				s += a[i][k] * b[i]
			}
			s = -s / a[k][k]
			for i := k; i < m; i++ {
				b[i] += s * a[i][k]
			}
		}
		rdiag[k] = -nrm
	}
	rmin, rmax := math.Inf(1), 0.0
	for _, d := range rdiag {
		ad := math.Abs(d)
		if ad < rmin {
			rmin = ad
		}
		if ad > rmax {
			rmax = ad
		}
	}
	if rmin == 0 || rmax/rmin > condLimit {
		return nil, nil, errors.New("mlfit: singular system")
	}
	// Back-substitute R x = (Q'b)[:n].
	x = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / rdiag[i]
	}
	r = make([][]float64, n)
	for i := range r {
		r[i] = make([]float64, n)
		r[i][i] = rdiag[i]
		for j := i + 1; j < n; j++ {
			r[i][j] = a[i][j]
		}
	}
	return x, r, nil
}

// RidgeModel is a standardized ridge regression with enough factorization
// state to price its own uncertainty: y ~ intercept + sum_j coef[j] *
// (x[features[j]] - mean[j]) / scale[j], with a per-prediction standard error
// derived from the LOO residual variance and the point's leverage under the
// stored R factor. All fields are exported so the model persists as JSON and
// reloads with bit-identical predictions.
type RidgeModel struct {
	// Features are column indices into the full feature row; Names are the
	// matching human-readable labels when the fit was given any.
	Features []int    `json:"features"`
	Names    []string `json:"names,omitempty"`
	// Mean and Scale standardize each selected feature before the linear map.
	Mean  []float64 `json:"mean"`
	Scale []float64 `json:"scale"`
	// Coef applies in standardized space; Intercept is unshrunk.
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
	// Lambda is the ridge strength LOO cross-validation chose.
	Lambda float64 `json:"lambda"`
	// Sigma2 is the LOO residual variance (the honest noise estimate — the
	// training residual variance is biased low by the fit itself).
	Sigma2 float64 `json:"sigma2"`
	// R is the (k+1)x(k+1) upper-triangular factor of the ridge-augmented
	// design matrix, intercept column last: R'R = Z'Z + diag(lambda, .., 0).
	// Leverage of a new point z is ||R^-T z||^2, which is what prices
	// extrapolation: far-from-training points get wide error bars.
	R [][]float64 `json:"r"`
	// LOORMSE is the leave-one-out RMSE on the training set, N its size.
	LOORMSE float64 `json:"loo_rmse"`
	N       int     `json:"n"`
}

// ScratchLen is the scratch-slice length PredictStd needs for a zero-alloc
// prediction.
func (m *RidgeModel) ScratchLen() int { return 2 * (len(m.Coef) + 1) }

// Predict evaluates the mean prediction on a full feature row.
func (m *RidgeModel) Predict(row []float64) float64 {
	y := m.Intercept
	for j, f := range m.Features {
		y += m.Coef[j] * (row[f] - m.Mean[j]) / m.Scale[j]
	}
	return y
}

// PredictStd returns the mean prediction and its standard error on a full
// feature row. The std is sqrt(sigma2 * (1 + leverage)): LOO noise plus the
// parameter-uncertainty term, so points far outside the training cloud are
// priced as uncertain instead of confidently wrong. scratch must be at least
// ScratchLen() long for an allocation-free call; a short or nil scratch is
// replaced by a fresh allocation.
func (m *RidgeModel) PredictStd(row []float64, scratch []float64) (mean, std float64) {
	k := len(m.Coef)
	dim := k + 1
	if len(scratch) < 2*dim {
		scratch = make([]float64, 2*dim)
	}
	z := scratch[:dim]
	u := scratch[dim : 2*dim]
	mean = m.Intercept
	for j, f := range m.Features {
		zj := (row[f] - m.Mean[j]) / m.Scale[j]
		z[j] = zj
		mean += m.Coef[j] * zj
	}
	z[k] = 1
	// Forward-substitute R' u = z; leverage is ||u||^2.
	for i := 0; i < dim; i++ {
		s := z[i]
		for j := 0; j < i; j++ {
			s -= m.R[j][i] * u[j]
		}
		u[i] = s / m.R[i][i]
	}
	h := 0.0
	for i := 0; i < dim; i++ {
		h += u[i] * u[i]
	}
	std = math.Sqrt(m.Sigma2 * (1 + h))
	return mean, std
}

// Valid reports whether a (possibly deserialized) model is structurally
// usable: consistent slice lengths, a full R factor with a nonzero diagonal.
func (m *RidgeModel) Valid() error {
	k := len(m.Coef)
	if len(m.Features) != k || len(m.Mean) != k || len(m.Scale) != k {
		return fmt.Errorf("mlfit: ridge model slice lengths disagree (%d features, %d mean, %d scale, %d coef)",
			len(m.Features), len(m.Mean), len(m.Scale), k)
	}
	dim := k + 1
	if len(m.R) != dim {
		return fmt.Errorf("mlfit: ridge model R is %dx, want %dx", len(m.R), dim)
	}
	for i, row := range m.R {
		if len(row) != dim {
			return fmt.Errorf("mlfit: ridge model R row %d has %d cols, want %d", i, len(row), dim)
		}
		if row[i] == 0 || math.IsNaN(row[i]) || math.IsInf(row[i], 0) {
			return fmt.Errorf("mlfit: ridge model R diagonal %d is %v", i, row[i])
		}
	}
	for j, s := range m.Scale {
		if s == 0 || math.IsNaN(s) {
			return fmt.Errorf("mlfit: ridge model scale %d is %v", j, s)
		}
	}
	return nil
}

// standardize computes per-column mean and standard deviation over the
// selected columns. Constant columns get scale 1 (their standardized value is
// identically zero and the ridge absorbs them).
func standardize(X [][]float64, cols []int) (mean, scale []float64) {
	n := float64(len(X))
	mean = make([]float64, len(cols))
	scale = make([]float64, len(cols))
	for j, c := range cols {
		var s float64
		for _, row := range X {
			s += row[c]
		}
		mean[j] = s / n
		var v float64
		for _, row := range X {
			d := row[c] - mean[j]
			v += d * d
		}
		sd := math.Sqrt(v / n)
		if sd < 1e-12 {
			sd = 1
		}
		scale[j] = sd
	}
	return mean, scale
}

// buildZ renders the standardized design matrix for the selected columns,
// with a trailing ones column for the intercept.
func buildZ(X [][]float64, cols []int, mean, scale []float64) [][]float64 {
	dim := len(cols) + 1
	Z := make([][]float64, len(X))
	for s, row := range X {
		z := make([]float64, dim)
		for j, c := range cols {
			z[j] = (row[c] - mean[j]) / scale[j]
		}
		z[dim-1] = 1
		Z[s] = z
	}
	return Z
}

// ridgeLOO fits coef on the standardized design Z (ones column last, not
// shrunk) at the given lambda and returns the exact leave-one-out RMSE via
// the hat-matrix diagonal: h_i = ||R^-T z_i||^2 and e_loo = e_i / (1 - h_i).
// When wantR is true the explicit R factor is also returned.
func ridgeLOO(Z [][]float64, y []float64, lambda float64, wantR bool) (coef []float64, r [][]float64, looRMSE float64, err error) {
	n := len(Z)
	if n == 0 {
		return nil, nil, 0, errors.New("mlfit: no samples")
	}
	dim := len(Z[0])
	a := make([][]float64, n+dim)
	b := make([]float64, n+dim)
	for i, z := range Z {
		a[i] = append([]float64(nil), z...)
		b[i] = y[i]
	}
	for j := 0; j < dim; j++ {
		row := make([]float64, dim)
		l := lambda
		if j == dim-1 {
			l = 0 // intercept column
		}
		row[j] = math.Sqrt(l + ridgeJitter)
		a[n+j] = row
	}
	coef, r, err = qrLS(a, b, dim)
	if err != nil {
		return nil, nil, 0, err
	}
	u := make([]float64, dim)
	var sse float64
	for i, z := range Z {
		// Forward-substitute R' u = z for the leverage.
		for p := 0; p < dim; p++ {
			s := z[p]
			for q := 0; q < p; q++ {
				s -= r[q][p] * u[q]
			}
			u[p] = s / r[p][p]
		}
		var h, pred float64
		for p := 0; p < dim; p++ {
			h += u[p] * u[p]
			pred += coef[p] * z[p]
		}
		denom := 1 - h
		if denom < hatFloor {
			denom = hatFloor
		}
		e := (y[i] - pred) / denom
		sse += e * e
	}
	looRMSE = math.Sqrt(sse / float64(n))
	if !wantR {
		r = nil
	}
	return coef, r, looRMSE, nil
}

// fitRidgeModel assembles a RidgeModel for the chosen columns: it searches
// the lambda grid by LOO RMSE and keeps the winner's factorization.
func fitRidgeModel(X [][]float64, y []float64, cols []int, names []string, lambdas []float64) (*RidgeModel, error) {
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas
	}
	mean, scale := standardize(X, cols)
	Z := buildZ(X, cols, mean, scale)
	var (
		best     *RidgeModel
		bestRMSE = math.Inf(1)
	)
	for _, l := range lambdas {
		coef, r, rmse, err := ridgeLOO(Z, y, l, true)
		if err != nil {
			continue
		}
		if rmse < bestRMSE {
			bestRMSE = rmse
			k := len(cols)
			m := &RidgeModel{
				Features:  append([]int(nil), cols...),
				Mean:      mean,
				Scale:     scale,
				Coef:      coef[:k],
				Intercept: coef[k],
				Lambda:    l,
				Sigma2:    rmse * rmse,
				R:         r,
				LOORMSE:   rmse,
				N:         len(X),
			}
			if names != nil {
				m.Names = make([]string, k)
				for j, c := range cols {
					m.Names[j] = names[c]
				}
			}
			best = m
		}
	}
	if best == nil {
		return nil, errors.New("mlfit: ridge fit failed at every lambda")
	}
	return best, nil
}

// FitRidgeCV fits a standardized ridge regression of y on the selected
// columns, choosing the ridge strength from the lambda grid (DefaultLambdas
// when nil) by exact leave-one-out cross-validation. names may be nil or a
// full-width feature-name list.
func FitRidgeCV(X [][]float64, y []float64, cols []int, names []string, lambdas []float64) (*RidgeModel, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("mlfit: bad sample dimensions")
	}
	if len(cols) == 0 {
		return nil, errors.New("mlfit: no columns selected")
	}
	return fitRidgeModel(X, y, cols, names, lambdas)
}

// ForwardSelectRidgeCV greedily grows a feature set for a standardized ridge
// model: each step adds the candidate with the lowest training RMSE at a
// mid-grid lambda, then keeps it only if the step's LOO RMSE improves on the
// incumbent by selectMinGain. The final model re-searches the full lambda
// grid on the chosen set. This is the honest version of ForwardSelect for
// prediction (training error always rewards more features; LOO does not).
func ForwardSelectRidgeCV(X [][]float64, y []float64, names []string, maxFeatures int, lambdas []float64) (*RidgeModel, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, errors.New("mlfit: bad sample dimensions")
	}
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas
	}
	nf := len(X[0])
	if nf == 0 {
		return nil, errors.New("mlfit: no features")
	}
	if maxFeatures > nf {
		maxFeatures = nf
	}
	// Never fit more parameters than a third of the samples can support.
	if lim := n/3 + 1; maxFeatures > lim {
		maxFeatures = lim
	}
	lambdaMid := lambdas[len(lambdas)/2]
	allCols := make([]int, nf)
	for i := range allCols {
		allCols[i] = i
	}
	fullMean, fullScale := standardize(X, allCols)
	var (
		chosen   []int
		used     = make([]bool, nf)
		bestLOO  = math.Inf(1)
		haveBest = false
	)
	for len(chosen) < maxFeatures {
		stepErr := math.Inf(1)
		stepF := -1
		cand := append(append([]int(nil), chosen...), -1)
		for f := 0; f < nf; f++ {
			if used[f] {
				continue
			}
			cand[len(cand)-1] = f
			mean := make([]float64, len(cand))
			scale := make([]float64, len(cand))
			for j, c := range cand {
				mean[j], scale[j] = fullMean[c], fullScale[c]
			}
			Z := buildZ(X, cand, mean, scale)
			coef, _, _, err := ridgeLOO(Z, y, lambdaMid, false)
			if err != nil {
				continue
			}
			var sse float64
			for i, z := range Z {
				var pred float64
				for p, c := range coef {
					pred += c * z[p]
				}
				d := y[i] - pred
				sse += d * d
			}
			if sse < stepErr {
				stepErr, stepF = sse, f
			}
		}
		if stepF < 0 {
			break
		}
		cand[len(cand)-1] = stepF
		mean := make([]float64, len(cand))
		scale := make([]float64, len(cand))
		for j, c := range cand {
			mean[j], scale[j] = fullMean[c], fullScale[c]
		}
		Z := buildZ(X, cand, mean, scale)
		_, _, loo, err := ridgeLOO(Z, y, lambdaMid, false)
		if err != nil {
			break
		}
		if haveBest && loo >= bestLOO*(1-selectMinGain) {
			break // diminishing returns: the honest error stopped improving
		}
		bestLOO, haveBest = loo, true
		chosen = append(chosen, stepF)
		used[stepF] = true
	}
	if len(chosen) == 0 {
		return nil, errors.New("mlfit: forward selection found no usable feature")
	}
	return fitRidgeModel(X, y, chosen, names, lambdas)
}
