package mlfit

import (
	"encoding/json"
	"math"
	"testing"
)

// testRNG is a deterministic splitmix64 generator so fits are reproducible.
type testRNG struct{ state uint64 }

func (r *testRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// float returns a uniform in [0, 1).
func (r *testRNG) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// TestQRNearCollinearFeatures is the numerical-robustness regression test:
// two config features that are almost exact copies of each other (the kind of
// correlation cache-size and associativity features have). The old
// normal-equations path squared the condition number and silently degraded;
// the QR path must keep the *predictions* accurate even though the individual
// coefficients are ill-determined.
func TestQRNearCollinearFeatures(t *testing.T) {
	rng := &testRNG{state: 7}
	const n = 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x1 := rng.float() * 10
		x2 := x1 + 1e-9*rng.float() // nearly collinear
		x3 := rng.float()
		X[i] = []float64{x1, x2, x3}
		y[i] = 2*x1 + 3*x2 - 1.5*x3 + 4
	}
	m, err := FitRidgeCV(X, y, []int{0, 1, 2}, []string{"x1", "x2", "x3"}, []float64{0})
	if err != nil {
		t.Fatalf("fit on near-collinear features: %v", err)
	}
	for i, row := range X {
		if d := math.Abs(m.Predict(row) - y[i]); d > 1e-4 {
			t.Fatalf("sample %d: |pred-y| = %g, want < 1e-4", i, d)
		}
	}
	// An exactly duplicated column must also stay solvable (jitter floor).
	for i := range X {
		X[i][1] = X[i][0]
	}
	if _, err := FitRidgeCV(X, y, []int{0, 1, 2}, []string{"x1", "x2", "x3"}, []float64{0}); err != nil {
		t.Fatalf("fit on exactly collinear features: %v", err)
	}
}

// TestRidgeLOOMatchesBruteForce checks the hat-diagonal LOO shortcut against
// literally refitting with each sample held out.
func TestRidgeLOOMatchesBruteForce(t *testing.T) {
	rng := &testRNG{state: 42}
	const (
		n      = 14
		dim    = 3 // 2 features + intercept column
		lambda = 0.1
	)
	Z := make([][]float64, n)
	y := make([]float64, n)
	for i := range Z {
		Z[i] = []float64{rng.float()*2 - 1, rng.float()*2 - 1, 1}
		y[i] = 1.5*Z[i][0] - 0.7*Z[i][1] + 0.3 + 0.05*(rng.float()-0.5)
	}
	_, _, fast, err := ridgeLOO(Z, y, lambda, false)
	if err != nil {
		t.Fatalf("ridgeLOO: %v", err)
	}
	// Brute force: refit on n-1 samples, predict the held-out one.
	var sse float64
	for hold := 0; hold < n; hold++ {
		a := make([][]float64, 0, n-1+dim)
		b := make([]float64, 0, n-1+dim)
		for i := range Z {
			if i == hold {
				continue
			}
			a = append(a, append([]float64(nil), Z[i]...))
			b = append(b, y[i])
		}
		for j := 0; j < dim; j++ {
			row := make([]float64, dim)
			l := lambda
			if j == dim-1 {
				l = 0
			}
			row[j] = math.Sqrt(l + ridgeJitter)
			a = append(a, row)
			b = append(b, 0)
		}
		coef, _, err := qrLS(a, b, dim)
		if err != nil {
			t.Fatalf("hold-out %d: %v", hold, err)
		}
		var pred float64
		for p, c := range coef {
			pred += c * Z[hold][p]
		}
		e := y[hold] - pred
		sse += e * e
	}
	brute := math.Sqrt(sse / n)
	if d := math.Abs(fast - brute); d > 1e-9 {
		t.Fatalf("LOO shortcut %.12f vs brute force %.12f (|d|=%g)", fast, brute, d)
	}
}

// TestRidgeModelJSONRoundTrip asserts bit-identical predictions after a
// marshal/unmarshal cycle — the property the surrogate's byte-stable output
// contract rests on.
func TestRidgeModelJSONRoundTrip(t *testing.T) {
	rng := &testRNG{state: 3}
	const n = 60
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.float() * 7, rng.float(), rng.float() * 100}
		y[i] = 0.4*X[i][0] - 2*X[i][1] + 0.01*X[i][2] + 1 + 0.01*(rng.float()-0.5)
	}
	m, err := FitRidgeCV(X, y, []int{0, 1, 2}, []string{"a", "b", "c"}, nil)
	if err != nil {
		t.Fatalf("FitRidgeCV: %v", err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back RidgeModel
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := back.Valid(); err != nil {
		t.Fatalf("reloaded model invalid: %v", err)
	}
	scratch := make([]float64, m.ScratchLen())
	for i := 0; i < n; i++ {
		m1, s1 := m.PredictStd(X[i], scratch)
		m2, s2 := back.PredictStd(X[i], scratch)
		if m1 != m2 || s1 != s2 {
			t.Fatalf("row %d: prediction drifted across JSON round-trip: (%v,%v) vs (%v,%v)", i, m1, s1, m2, s2)
		}
	}
}

// TestForwardSelectRidgeCV checks that CV-scored selection finds the
// informative features, ignores noise columns, and that the resulting
// uncertainty estimate widens away from the training cloud.
func TestForwardSelectRidgeCV(t *testing.T) {
	rng := &testRNG{state: 11}
	const n, nf = 150, 8
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, nf)
		for j := range row {
			row[j] = rng.float()*2 - 1
		}
		X[i] = row
		y[i] = 3*row[2] - 2*row[5] + 0.5 + 0.01*(rng.float()-0.5)
	}
	m, err := ForwardSelectRidgeCV(X, y, nil, 4, nil)
	if err != nil {
		t.Fatalf("ForwardSelectRidgeCV: %v", err)
	}
	got := map[int]bool{}
	for _, f := range m.Features {
		got[f] = true
	}
	if !got[2] || !got[5] {
		t.Fatalf("selection missed informative features: chose %v", m.Features)
	}
	if m.LOORMSE > 0.05 {
		t.Fatalf("LOO RMSE %.4f, want <= 0.05", m.LOORMSE)
	}
	scratch := make([]float64, m.ScratchLen())
	inRow := X[0]
	farRow := make([]float64, nf)
	for j := range farRow {
		farRow[j] = 25 // far outside the [-1,1] training cloud
	}
	_, sIn := m.PredictStd(inRow, scratch)
	_, sFar := m.PredictStd(farRow, scratch)
	if sFar <= sIn*2 {
		t.Fatalf("extrapolation std %.6f not meaningfully wider than interpolation std %.6f", sFar, sIn)
	}
}

// TestPredictStdZeroAllocScratch guards the steady-state allocation contract
// the surrogate tier depends on.
func TestPredictStdZeroAllocScratch(t *testing.T) {
	rng := &testRNG{state: 5}
	const n = 40
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.float(), rng.float()}
		y[i] = X[i][0] + 2*X[i][1]
	}
	m, err := FitRidgeCV(X, y, []int{0, 1}, nil, nil)
	if err != nil {
		t.Fatalf("FitRidgeCV: %v", err)
	}
	scratch := make([]float64, m.ScratchLen())
	row := X[0]
	allocs := testing.AllocsPerRun(100, func() {
		m.PredictStd(row, scratch)
	})
	if allocs != 0 {
		t.Fatalf("PredictStd allocates %v allocs/op with scratch, want 0", allocs)
	}
}
