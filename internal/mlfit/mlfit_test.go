package mlfit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func synthData(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = 3 + 2*X[i][0] + 5*X[i][2] + noise*rng.NormFloat64()
	}
	return X, y
}

func TestOLSRecoversCoefficients(t *testing.T) {
	X, y := synthData(500, 0, 1)
	m, err := Fit(X, y, Options{Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 5, 0, 0}
	for i, w := range want {
		if math.Abs(m.Coef[i]-w) > 1e-5 {
			t.Errorf("coef[%d] = %v, want %v", i, m.Coef[i], w)
		}
	}
	if math.Abs(m.Intercept-3) > 1e-5 {
		t.Errorf("intercept = %v, want 3", m.Intercept)
	}
}

func TestRidgeShrinks(t *testing.T) {
	X, y := synthData(100, 0.1, 2)
	plain, err := Fit(X, y, Options{Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := Fit(X, y, Options{Intercept: true, Ridge: 100})
	if err != nil {
		t.Fatal(err)
	}
	var np, nr float64
	for i := range plain.Coef {
		np += plain.Coef[i] * plain.Coef[i]
		nr += ridge.Coef[i] * ridge.Coef[i]
	}
	if nr >= np {
		t.Errorf("ridge norm %v >= OLS norm %v", nr, np)
	}
}

func TestNonNegativeConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X := make([][]float64, 300)
	y := make([]float64, 300)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = 4*X[i][0] - 3*X[i][1] + 0.05*rng.NormFloat64() // one negative true coef
	}
	m, err := Fit(X, y, Options{Intercept: true, NonNegative: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Coef {
		if c < 0 {
			t.Errorf("coef[%d] = %v negative under constraint", i, c)
		}
	}
	if m.Intercept < 0 {
		t.Error("negative intercept under constraint")
	}
}

func TestForwardSelectFindsInformativeFeatures(t *testing.T) {
	X, y := synthData(400, 0.01, 4)
	m, err := ForwardSelect(X, y, 2, Options{Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Features) != 2 {
		t.Fatalf("selected %d features, want 2", len(m.Features))
	}
	got := map[int]bool{}
	for _, f := range m.Features {
		got[f] = true
	}
	if !got[0] || !got[2] {
		t.Errorf("selected %v, want features 0 and 2", m.Features)
	}
}

func TestForwardSelectErrorDecreasesWithBudget(t *testing.T) {
	X, y := synthData(400, 0.2, 5)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 3, 5} {
		m, err := ForwardSelect(X, y, k, Options{Intercept: true})
		if err != nil {
			t.Fatal(err)
		}
		e := MeanAbsPctError(m, X, y)
		if e > prev+1e-9 {
			t.Errorf("error with %d features %.4f worse than with fewer (%.4f)", k, e, prev)
		}
		prev = e
	}
}

func TestMeanAbsPctErrorZeroOnPerfectFit(t *testing.T) {
	X, y := synthData(50, 0, 6)
	m, err := Fit(X, y, Options{Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if e := MeanAbsPctError(m, X, y); e > 1e-6 {
		t.Errorf("perfect fit error %v", e)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	for i := 0; i < 60; i++ {
		X = append(X, []float64{rng.Float64() * 0.1, rng.Float64() * 0.1})
	}
	for i := 0; i < 60; i++ {
		X = append(X, []float64{10 + rng.Float64()*0.1, 10 + rng.Float64()*0.1})
	}
	assign, cent, err := KMeans(X, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(cent) != 2 {
		t.Fatalf("centroids %d", len(cent))
	}
	for i := 1; i < 60; i++ {
		if assign[i] != assign[0] {
			t.Fatal("cluster 1 split")
		}
	}
	for i := 61; i < 120; i++ {
		if assign[i] != assign[60] {
			t.Fatal("cluster 2 split")
		}
	}
	if assign[0] == assign[60] {
		t.Fatal("clusters merged")
	}
}

func TestKMeansDegenerateInputs(t *testing.T) {
	if _, _, err := KMeans(nil, 2, 10); err == nil {
		t.Error("empty input accepted")
	}
	X := [][]float64{{1, 2}, {3, 4}}
	assign, cent, err := KMeans(X, 5, 10) // k > n clamps
	if err != nil {
		t.Fatal(err)
	}
	if len(cent) != 2 || len(assign) != 2 {
		t.Errorf("clamp failed: %d centroids", len(cent))
	}
}

func TestCorrelationProperties(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if c := Correlation(a, a); math.Abs(c-1) > 1e-12 {
		t.Errorf("self correlation %v", c)
	}
	b := []float64{5, 4, 3, 2, 1}
	if c := Correlation(a, b); math.Abs(c+1) > 1e-12 {
		t.Errorf("anti correlation %v", c)
	}
	if Correlation(a, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Error("constant series correlation nonzero")
	}
}

func TestPredictLinearityProperty(t *testing.T) {
	m := &LinearModel{Features: []int{0, 1}, Coef: []float64{2, -1}, Intercept: 0.5}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		got := m.Predict([]float64{a, b})
		want := 0.5 + 2*a - b
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
