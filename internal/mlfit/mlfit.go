// Package mlfit provides the small machine-learning substrate the paper's
// methodology uses: linear counter-based power models fit by (ridge-)least
// squares, greedy forward feature selection under input-count constraints
// (how the M1-linked models and the hardware power proxy choose their
// counters), and k-means clustering (the Simpoint baseline). Standard
// library only.
package mlfit

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// LinearModel is y ~ intercept + sum_i coef[i] * x[features[i]].
type LinearModel struct {
	Features  []int // column indices into the full feature matrix
	Coef      []float64
	Intercept float64
	// NonNegative records whether the fit constrained coefficients >= 0
	// (hardware power proxies often require positive weights).
	NonNegative bool
}

// Predict evaluates the model on a full feature row.
func (m *LinearModel) Predict(row []float64) float64 {
	y := m.Intercept
	for i, f := range m.Features {
		y += m.Coef[i] * row[f]
	}
	return y
}

// Options configures fitting.
type Options struct {
	Ridge       float64 // L2 regularization strength (0 = plain OLS)
	Intercept   bool
	NonNegative bool // clip-and-refit to keep coefficients >= 0
}

// solve performs Gaussian elimination with partial pivoting on a copy of A|b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, errors.New("mlfit: singular system")
		}
		m[col], m[p] = m[p], m[col]
		pv := m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / pv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, nil
}

// fitOnColumns fits y on the selected columns of X.
func fitOnColumns(X [][]float64, y []float64, cols []int, opt Options) (*LinearModel, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, errors.New("mlfit: bad sample dimensions")
	}
	k := len(cols)
	dim := k
	if opt.Intercept {
		dim++
	}
	// Normal equations: (Z'Z + ridge I) w = Z'y.
	zt := make([][]float64, dim)
	for i := range zt {
		zt[i] = make([]float64, dim)
	}
	zy := make([]float64, dim)
	row := make([]float64, dim)
	for s := 0; s < n; s++ {
		for i, c := range cols {
			row[i] = X[s][c]
		}
		if opt.Intercept {
			row[dim-1] = 1
		}
		for i := 0; i < dim; i++ {
			zy[i] += row[i] * y[s]
			for j := i; j < dim; j++ {
				zt[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := 0; j < i; j++ {
			zt[i][j] = zt[j][i]
		}
		ridge := opt.Ridge
		if opt.Intercept && i == dim-1 {
			ridge = 0 // do not shrink the intercept
		}
		zt[i][i] += ridge + 1e-9 // tiny jitter for stability
	}
	w, err := solve(zt, zy)
	if err != nil {
		return nil, err
	}
	m := &LinearModel{Features: append([]int{}, cols...), Coef: w[:k], NonNegative: opt.NonNegative}
	if opt.Intercept {
		m.Intercept = w[k]
	}
	if opt.NonNegative {
		// Iteratively drop negative-coefficient features and refit.
		for {
			var keep []int
			for i, c := range m.Coef {
				if c >= 0 {
					keep = append(keep, m.Features[i])
				}
			}
			if len(keep) == len(m.Features) {
				break
			}
			if len(keep) == 0 {
				m.Coef = nil
				m.Features = nil
				break
			}
			sub := opt
			sub.NonNegative = false
			mm, err := fitOnColumns(X, y, keep, sub)
			if err != nil {
				return nil, err
			}
			m.Features, m.Coef, m.Intercept = mm.Features, mm.Coef, mm.Intercept
		}
		if m.Intercept < 0 {
			m.Intercept = 0
		}
	}
	return m, nil
}

// FitColumns fits a linear model restricted to the given columns.
func FitColumns(X [][]float64, y []float64, cols []int, opt Options) (*LinearModel, error) {
	return fitOnColumns(X, y, cols, opt)
}

// Fit fits a linear model on all columns of X.
func Fit(X [][]float64, y []float64, opt Options) (*LinearModel, error) {
	if len(X) == 0 {
		return nil, errors.New("mlfit: no samples")
	}
	cols := make([]int, len(X[0]))
	for i := range cols {
		cols[i] = i
	}
	return fitOnColumns(X, y, cols, opt)
}

// MeanAbsPctError returns mean |pred-y|/mean(y) — the "% error on active
// power" metric the paper's model-accuracy figures report.
func MeanAbsPctError(m *LinearModel, X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	var meanY, sumAbs float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))
	if meanY == 0 {
		return 0
	}
	for i, row := range X {
		sumAbs += math.Abs(m.Predict(row) - y[i])
	}
	return sumAbs / float64(len(X)) / meanY * 100
}

// ForwardSelect greedily adds up to maxFeatures columns, each step choosing
// the feature that most reduces training error. This is how the methodology
// derives constrained-input power models (Figs. 11 and 15a).
func ForwardSelect(X [][]float64, y []float64, maxFeatures int, opt Options) (*LinearModel, error) {
	if len(X) == 0 {
		return nil, errors.New("mlfit: no samples")
	}
	nf := len(X[0])
	if maxFeatures > nf {
		maxFeatures = nf
	}
	var chosen []int
	used := make([]bool, nf)
	var best *LinearModel
	bestErr := math.Inf(1)
	for len(chosen) < maxFeatures {
		stepBestErr := math.Inf(1)
		stepBestF := -1
		var stepBestModel *LinearModel
		for f := 0; f < nf; f++ {
			if used[f] {
				continue
			}
			cand := append(append([]int{}, chosen...), f)
			m, err := fitOnColumns(X, y, cand, opt)
			if err != nil {
				continue
			}
			e := MeanAbsPctError(m, X, y)
			if e < stepBestErr {
				stepBestErr, stepBestF, stepBestModel = e, f, m
			}
		}
		if stepBestF < 0 {
			break
		}
		chosen = append(chosen, stepBestF)
		used[stepBestF] = true
		if stepBestErr < bestErr {
			bestErr, best = stepBestErr, stepBestModel
		}
	}
	if best == nil {
		return nil, errors.New("mlfit: forward selection found no usable feature")
	}
	return best, nil
}

// KMeans clusters rows into k clusters (deterministic k-means++ style
// seeding using a fixed stride, Lloyd iterations until stable).
// It returns the assignment and the centroids.
func KMeans(X [][]float64, k int, maxIter int) ([]int, [][]float64, error) {
	n := len(X)
	if n == 0 || k <= 0 {
		return nil, nil, fmt.Errorf("mlfit: kmeans with n=%d k=%d", n, k)
	}
	if k > n {
		k = n
	}
	dim := len(X[0])
	cent := make([][]float64, k)
	// Deterministic spread seeding: evenly strided samples after sorting
	// by vector norm.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	norm := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x * x
		}
		return s
	}
	sort.Slice(idx, func(a, b int) bool { return norm(X[idx[a]]) < norm(X[idx[b]]) })
	for c := 0; c < k; c++ {
		cent[c] = append([]float64{}, X[idx[c*n/k]]...)
	}
	assign := make([]int, n)
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, row := range X {
			best, bd := 0, math.Inf(1)
			for c := range cent {
				if d := dist(row, cent[c]); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, row := range X {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				sums[c][j] += v
			}
		}
		for c := range cent {
			if counts[c] == 0 {
				continue // keep old centroid
			}
			for j := range cent[c] {
				cent[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return assign, cent, nil
}

// Correlation returns the Pearson correlation of two series.
func Correlation(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
