// Package proxy is the Chopstix analog (Section III-A): it profiles a
// benchmark's functional execution, extracts its hottest code regions with
// their captured dynamic state, and turns each into an L1-contained endless
// loop ("proxy workload") small enough for slow latch-accurate simulation
// while preserving the benchmark's behaviour mix. Coverage accounting
// reproduces the paper's 41-99% per-benchmark coverage figures.
package proxy

import (
	"fmt"
	"sort"

	"power10sim/internal/isa"
	"power10sim/internal/trace"
	"power10sim/internal/workloads"
)

// Proxy is one extracted snippet: a captured dynamic slice of a hot region,
// replayed as an endless loop.
type Proxy struct {
	Name   string
	Source string // originating benchmark
	// Region is the static code index range [Start, End) of the hot region.
	Start, End int
	// Weight is the region's share of the source's dynamic execution,
	// used for whole-suite projection.
	Weight float64
	// Recs is the captured dynamic slice (code + data state).
	Recs []isa.DynInst
	prog *isa.Program
}

// Len returns the snippet length in dynamic instructions.
func (p *Proxy) Len() int { return len(p.Recs) }

// Stream returns an endless-loop replay bounded by budget instructions.
func (p *Proxy) Stream(budget uint64) trace.Stream {
	return trace.NewLoopStream(p.prog, p.Recs, budget)
}

// Result is the outcome of extracting proxies from one benchmark.
type Result struct {
	Source  string
	Proxies []*Proxy
	// Coverage is the fraction of the benchmark's dynamic instructions
	// that fall inside the extracted regions.
	Coverage float64
	// TotalDynamic is the profiled dynamic instruction count.
	TotalDynamic uint64
}

// Options tunes the extraction.
type Options struct {
	TopRegions int // hottest regions to keep (paper: top 10 functions)
	MaxSnippet int // maximum snippet length (paper: up to ~22K instructions)
	MinSnippet int // discard shorter captures
	// Invocations captures up to this many distinct dynamic slices per
	// region ("multiple invocations of these top most-executed functions").
	Invocations int
	// ProfileBudget bounds the profiling run.
	ProfileBudget uint64
}

// DefaultOptions mirrors the paper's parameters at simulation scale.
func DefaultOptions() Options {
	return Options{
		TopRegions:    10,
		MaxSnippet:    22_000,
		MinSnippet:    64,
		Invocations:   2,
		ProfileBudget: 400_000,
	}
}

// region is a contiguous static code range with its dynamic heat.
type region struct {
	start, end int
	count      uint64
}

// findRegions groups static instructions into hot regions: contiguous runs
// of instructions whose execution count is at least heatFrac of the hottest
// instruction, allowing small cold gaps (cold error-path blocks inside a
// hot function).
func findRegions(execCount []uint64) []region {
	var max uint64
	for _, c := range execCount {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return nil
	}
	threshold := max / 64
	const gapAllow = 4
	var regions []region
	i := 0
	for i < len(execCount) {
		if execCount[i] <= threshold {
			i++
			continue
		}
		start := i
		var sum uint64
		gap := 0
		end := i
		for i < len(execCount) {
			if execCount[i] > threshold {
				sum += execCount[i]
				gap = 0
				end = i + 1 // exclusive end just past the last hot slot
			} else {
				gap++
				if gap > gapAllow {
					break
				}
			}
			i++
		}
		regions = append(regions, region{start: start, end: end, count: sum})
	}
	sort.Slice(regions, func(a, b int) bool { return regions[a].count > regions[b].count })
	return regions
}

// Extract profiles the workload and produces its proxy set.
func Extract(w *workloads.Workload, opt Options) (*Result, error) {
	budget := opt.ProfileBudget
	if budget == 0 {
		budget = DefaultOptions().ProfileBudget
	}
	recs, err := trace.Capture(w.Prog, budget)
	if err != nil {
		return nil, fmt.Errorf("proxy: profiling %s: %w", w.Name, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("proxy: %s produced no instructions", w.Name)
	}
	execCount := make([]uint64, len(w.Prog.Code))
	for i := range recs {
		execCount[recs[i].Idx]++
	}
	regions := findRegions(execCount)
	if opt.TopRegions > 0 && len(regions) > opt.TopRegions {
		regions = regions[:opt.TopRegions]
	}

	res := &Result{Source: w.Name, TotalDynamic: uint64(len(recs))}
	var covered uint64
	for ri, rg := range regions {
		covered += rg.count
		weight := float64(rg.count) / float64(len(recs))
		// Capture up to Invocations distinct dynamic slices of the region.
		slices := captureSlices(recs, rg, opt)
		for si, sl := range slices {
			res.Proxies = append(res.Proxies, &Proxy{
				Name:   fmt.Sprintf("%s.r%d.i%d", w.Name, ri, si),
				Source: w.Name,
				Start:  rg.start,
				End:    rg.end,
				Weight: weight / float64(len(slices)),
				Recs:   sl,
				prog:   w.Prog,
			})
		}
	}
	res.Coverage = float64(covered) / float64(len(recs))
	return res, nil
}

// captureSlices pulls contiguous in-region dynamic slices from the trace.
func captureSlices(recs []isa.DynInst, rg region, opt Options) [][]isa.DynInst {
	maxLen := opt.MaxSnippet
	if maxLen <= 0 {
		maxLen = 22_000
	}
	minLen := opt.MinSnippet
	inv := opt.Invocations
	if inv <= 0 {
		inv = 1
	}
	inRegion := func(idx int32) bool { return int(idx) >= rg.start && int(idx) < rg.end }
	var out [][]isa.DynInst
	i := 0
	for len(out) < inv && i < len(recs) {
		for i < len(recs) && !inRegion(recs[i].Idx) {
			i++
		}
		if i >= len(recs) {
			break
		}
		start := i
		escapes := 0
		for i < len(recs) && i-start < maxLen {
			if inRegion(recs[i].Idx) {
				escapes = 0
			} else {
				escapes++
				if escapes > 8 {
					break
				}
			}
			i++
		}
		sl := recs[start:i]
		if len(sl) >= minLen {
			out = append(out, sl)
		}
		// Skip ahead so invocations are distinct phases.
		i += len(recs) / (inv * 4)
	}
	return out
}

// SuiteResult aggregates extraction across a whole benchmark suite.
type SuiteResult struct {
	PerBenchmark []*Result
	TotalProxies int
	MeanCoverage float64
	MinCoverage  float64
	MaxCoverage  float64
}

// ExtractSuite runs Extract over each workload.
func ExtractSuite(suite []*workloads.Workload, opt Options) (*SuiteResult, error) {
	out := &SuiteResult{MinCoverage: 1}
	for _, w := range suite {
		r, err := Extract(w, opt)
		if err != nil {
			return nil, err
		}
		out.PerBenchmark = append(out.PerBenchmark, r)
		out.TotalProxies += len(r.Proxies)
		out.MeanCoverage += r.Coverage
		if r.Coverage < out.MinCoverage {
			out.MinCoverage = r.Coverage
		}
		if r.Coverage > out.MaxCoverage {
			out.MaxCoverage = r.Coverage
		}
	}
	if n := len(out.PerBenchmark); n > 0 {
		out.MeanCoverage /= float64(n)
	}
	return out, nil
}
