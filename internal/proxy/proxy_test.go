package proxy

import (
	"testing"

	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

func TestExtractFindsHotRegions(t *testing.T) {
	w := workloads.Compress()
	res, err := Extract(w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proxies) == 0 {
		t.Fatal("no proxies extracted")
	}
	if res.Coverage < 0.4 || res.Coverage > 1.0 {
		t.Errorf("coverage %.2f outside plausible range", res.Coverage)
	}
	for _, p := range res.Proxies {
		if p.Len() < 64 {
			t.Errorf("%s: snippet too short (%d)", p.Name, p.Len())
		}
		if p.Len() > 22_000 {
			t.Errorf("%s: snippet exceeds 22K cap (%d)", p.Name, p.Len())
		}
		if p.Weight <= 0 || p.Weight > 1 {
			t.Errorf("%s: weight %v", p.Name, p.Weight)
		}
	}
}

func TestProxyStreamLoopsEndlessly(t *testing.T) {
	res, err := Extract(workloads.IntCompute(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Proxies[0]
	budget := uint64(3*p.Len() + 5)
	s := p.Stream(budget)
	var n uint64
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != budget {
		t.Errorf("proxy loop delivered %d, want %d (endless loop semantics)", n, budget)
	}
}

func TestProxyRunsOnTimingModel(t *testing.T) {
	res, err := Extract(workloads.MediaVec(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Proxies[0]
	r, err := uarch.Simulate(uarch.POWER10(), []trace.Stream{p.Stream(30_000)}, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Activity.Instructions < 29_000 {
		t.Errorf("proxy retired %d on timing model", r.Activity.Instructions)
	}
	if r.IPC() <= 0 {
		t.Error("zero IPC")
	}
}

func TestProxyPreservesBehaviourMix(t *testing.T) {
	// A proxy of the SIMD benchmark must itself be SIMD-heavy.
	w := workloads.MediaVec()
	res, err := Extract(w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Summarize(w.Prog, res.Proxies[0].Recs)
	if st.Flops == 0 {
		t.Error("mediavec proxy lost its SIMD content")
	}
}

func TestSuiteExtractionCoverageShape(t *testing.T) {
	// Paper: per-benchmark coverage between ~41% and ~99%, averaging ~70%,
	// with a rich proxy population.
	sr, err := ExtractSuite(workloads.SPECintSuite(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sr.TotalProxies < 20 {
		t.Errorf("only %d proxies across the suite", sr.TotalProxies)
	}
	if sr.MeanCoverage < 0.5 || sr.MeanCoverage > 1.0 {
		t.Errorf("mean coverage %.2f outside [0.5, 1.0]", sr.MeanCoverage)
	}
	if sr.MinCoverage >= sr.MaxCoverage {
		t.Errorf("coverage has no spread: [%.2f, %.2f]", sr.MinCoverage, sr.MaxCoverage)
	}
}

func TestFindRegionsSplitsOnColdGaps(t *testing.T) {
	counts := make([]uint64, 100)
	for i := 10; i < 20; i++ {
		counts[i] = 1000
	}
	for i := 60; i < 80; i++ {
		counts[i] = 500
	}
	regions := findRegions(counts)
	if len(regions) != 2 {
		t.Fatalf("found %d regions, want 2", len(regions))
	}
	// Hottest first.
	if regions[0].count < regions[1].count {
		t.Error("regions not sorted by heat")
	}
	if regions[0].start != 10 || regions[0].end != 20 {
		t.Errorf("region 0 = [%d, %d), want [10, 20)", regions[0].start, regions[0].end)
	}
}

func TestFindRegionsEmptyProfile(t *testing.T) {
	if regions := findRegions(make([]uint64, 50)); regions != nil {
		t.Error("regions from empty profile")
	}
}
