// Package serminer implements the SERMiner methodology (Section III-E):
// power-aware soft-error vulnerability analysis. Because POWER10's
// fine-grained clock gating refreshes latch data every clocked cycle,
// SERMiner uses clock utilization (switching) from latch-level simulation as
// the vulnerability proxy instead of data residency. Latches are classified
// as statically derated (never switch in any workload, configuration latches
// excepted), runtime derated (switching below the Vulnerability Threshold),
// or vulnerable — driving the selective-protection RAS policy.
package serminer

import (
	"fmt"
	"sort"

	"power10sim/internal/rtl"
	"power10sim/internal/uarch"
)

// Run is one workload's latch-level observation.
type Run struct {
	Name string
	// Switching is the per-bucket data-switching activity (clock
	// utilization x toggle probability), parallel to the latch model's
	// buckets.
	Switching []float64
}

// Study accumulates runs over one core configuration.
type Study struct {
	Model *rtl.LatchModel
	Runs  []Run
}

// NewStudy prepares a derating study for a configuration.
func NewStudy(cfg *uarch.Config) *Study {
	return &Study{Model: rtl.NewLatchModel(cfg)}
}

// AddRun records a workload's activity. dataToggle overrides the default
// datapath toggle estimate when the workload's operand content is known
// (microprobe zero- vs random-init testcases); pass <= 0 to use the default.
func (s *Study) AddRun(name string, a *uarch.Activity, dataToggle float64) {
	st := s.Model.Analyze(a)
	sw := make([]float64, len(s.Model.Buckets))
	for i, b := range s.Model.Buckets {
		if b.Config || b.Weight == 0 {
			continue
		}
		toggle := dataToggle
		if toggle <= 0 {
			toggle = rtl.DefaultToggle(a.BusyFraction(b.Unit))
		}
		sw[i] = st.BucketUtil[i] * toggle
	}
	s.Runs = append(s.Runs, Run{Name: name, Switching: sw})
}

// Report is the derating outcome for one scope (a single workload or the
// whole-study aggregate).
type Report struct {
	Name string
	// StaticDerating is the latch fraction that never switches
	// (configuration latches excepted — they hold state and stay
	// potentially vulnerable).
	StaticDerating float64
	// RuntimeDerating maps VT percent -> latch fraction with nonzero
	// switching below the vulnerability threshold.
	RuntimeDerating map[int]float64
	// Vulnerable maps VT percent -> latch fraction requiring protection.
	Vulnerable map[int]float64
}

// quantile returns the q-quantile (0..1) of positive values.
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64{}, vals...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// maxSwitching returns each bucket's maximum switching across all runs.
func (s *Study) maxSwitching() []float64 {
	maxSwitch := make([]float64, len(s.Model.Buckets))
	for _, r := range s.Runs {
		for i, v := range r.Switching {
			if v > maxSwitch[i] {
				maxSwitch[i] = v
			}
		}
	}
	return maxSwitch
}

// Thresholds computes the study's vulnerability thresholds: for each VT, the
// switching value at the (100-VT)th percentile of the aggregate (max across
// workloads) positive per-latch switching distribution. Per-workload reports
// and cross-machine comparisons (Fig. 14) all reference one threshold set so
// that "comparable resilience" means comparable absolute switching — a
// zero-data testcase's quieter latches really are less vulnerable.
func (s *Study) Thresholds(vts []int) map[int]float64 {
	var pool []float64
	for i, v := range s.maxSwitching() {
		if v > 0 && !s.Model.Buckets[i].Config {
			pool = append(pool, v)
		}
	}
	out := map[int]float64{}
	for _, vt := range vts {
		out[vt] = quantile(pool, 1-float64(vt)/100)
	}
	return out
}

// derate classifies latches given per-bucket max switching values.
func (s *Study) derate(name string, maxSwitch []float64, vts []int) Report {
	return s.derateThresholds(name, maxSwitch, vts, nil)
}

// derateThresholds classifies with explicit thresholds (nil = self-derived).
func (s *Study) derateThresholds(name string, maxSwitch []float64, vts []int, thr map[int]float64) Report {
	rep := Report{
		Name:            name,
		RuntimeDerating: map[int]float64{},
		Vulnerable:      map[int]float64{},
	}
	var total, static float64
	var positive []float64
	var positiveWeights []float64
	var configLatches float64
	for i, b := range s.Model.Buckets {
		w := float64(b.Latches)
		total += w
		switch {
		case b.Config:
			// Set at init, holds state: potentially vulnerable.
			configLatches += w
		case maxSwitch[i] <= 0:
			static += w
		default:
			positive = append(positive, maxSwitch[i])
			positiveWeights = append(positiveWeights, w)
		}
	}
	if total == 0 {
		return rep
	}
	rep.StaticDerating = static / total
	for _, vt := range vts {
		// VT=x%: latches whose switching is within the top x-th percentile
		// of observed positive switching values are vulnerable.
		threshold, ok := thr[vt]
		if !ok {
			threshold = quantile(positive, 1-float64(vt)/100)
		}
		var runtimeDerated, vulnerable float64
		for i, v := range positive {
			if VulnerableAt(false, v, threshold) {
				vulnerable += positiveWeights[i]
			} else {
				runtimeDerated += positiveWeights[i]
			}
		}
		vulnerable += configLatches
		rep.RuntimeDerating[vt] = runtimeDerated / total
		rep.Vulnerable[vt] = vulnerable / total
	}
	return rep
}

// PerWorkload produces Fig. 13's per-suite derating bars, classifying each
// workload's switching against the study-wide thresholds.
func (s *Study) PerWorkload(vts []int) []Report {
	thr := s.Thresholds(vts)
	out := make([]Report, 0, len(s.Runs))
	for _, r := range s.Runs {
		out = append(out, s.derateThresholds(r.Name, r.Switching, vts, thr))
	}
	return out
}

// Aggregate produces Fig. 14's whole-suite view: a latch's switching is its
// maximum across all workloads (it must be quiet everywhere to be derated).
// Pass explicit thresholds for cross-machine comparisons; nil self-derives.
func (s *Study) Aggregate(vts []int, thresholds map[int]float64) (Report, error) {
	if len(s.Runs) == 0 {
		return Report{}, fmt.Errorf("serminer: no runs recorded")
	}
	return s.derateThresholds("aggregate", s.maxSwitching(), vts, thresholds), nil
}

// TotalDerating returns static + runtime derating at a VT (higher is better:
// fewer latches need protection).
func (r *Report) TotalDerating(vt int) float64 {
	return r.StaticDerating + r.RuntimeDerating[vt]
}

// VulnerableAt is the study's latch classification rule, exported so the
// fault-injection engine applies the exact same test per trial that the
// analytic derating applies per bucket: configuration latches always hold
// potentially vulnerable state; other latches are vulnerable when their
// switching is positive and at or above the VT threshold. Keeping this rule
// in one place is what makes the injection-measured non-masked fraction
// directly comparable to the analytic vulnerable fraction.
func VulnerableAt(config bool, switching, threshold float64) bool {
	if config {
		return true
	}
	return switching > 0 && switching >= threshold
}
