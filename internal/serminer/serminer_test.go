package serminer

import (
	"testing"

	"power10sim/internal/microprobe"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

func runCase(t *testing.T, cfg *uarch.Config, tc *microprobe.TestCase) *uarch.Activity {
	t.Helper()
	streams := []trace.Stream{}
	n := tc.SMT
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		streams = append(streams, trace.NewVMStream(tc.Workload.Prog, tc.Workload.Budget))
	}
	res, err := uarch.Simulate(cfg, streams, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return &res.Activity
}

func buildStudy(t *testing.T, cfg *uarch.Config) *Study {
	t.Helper()
	study := NewStudy(cfg)
	suite, err := microprobe.Fig13Suite()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range suite {
		study.AddRun(tc.Name, runCase(t, cfg, tc), tc.DataToggle)
	}
	// SPEC proxies per the paper's evaluated-workloads list.
	for _, w := range []*workloads.Workload{workloads.IntCompute(), workloads.Compress()} {
		res, err := uarch.Simulate(cfg, []trace.Stream{trace.NewVMStream(w.Prog, w.Budget)}, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		study.AddRun(w.Name+"_spec", &res.Activity, 0)
	}
	return study
}

func TestPerWorkloadDeratingShape(t *testing.T) {
	study := buildStudy(t, uarch.POWER10())
	reports := study.PerWorkload([]int{10, 50, 90})
	if len(reports) != len(study.Runs) {
		t.Fatalf("%d reports for %d runs", len(reports), len(study.Runs))
	}
	for _, r := range reports {
		if r.StaticDerating <= 0.05 || r.StaticDerating > 0.8 {
			t.Errorf("%s: static derating %.2f implausible", r.Name, r.StaticDerating)
		}
		// Runtime derating shrinks as VT grows (more latches vulnerable).
		if r.RuntimeDerating[10] < r.RuntimeDerating[90] {
			t.Errorf("%s: runtime derating rises with VT: %.2f -> %.2f",
				r.Name, r.RuntimeDerating[10], r.RuntimeDerating[90])
		}
		for _, vt := range []int{10, 50, 90} {
			sum := r.StaticDerating + r.RuntimeDerating[vt] + r.Vulnerable[vt]
			if sum < 0.99 || sum > 1.01 {
				t.Errorf("%s VT=%d: classes sum to %.3f", r.Name, vt, sum)
			}
		}
	}
}

func TestVulnerableGrowsWithVT(t *testing.T) {
	study := buildStudy(t, uarch.POWER10())
	agg, err := study.Aggregate([]int{10, 30, 50, 70, 90}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, vt := range []int{10, 30, 50, 70, 90} {
		v := agg.Vulnerable[vt]
		if v < prev {
			t.Errorf("vulnerable fraction fell from %.3f to %.3f at VT=%d", prev, v, vt)
		}
		prev = v
	}
	// Paper: ~25% vulnerable at VT=10%, ~52% at VT=90%.
	if agg.Vulnerable[10] > 0.45 {
		t.Errorf("VT=10 vulnerable %.2f too high", agg.Vulnerable[10])
	}
	if agg.Vulnerable[90] < 0.3 || agg.Vulnerable[90] > 0.85 {
		t.Errorf("VT=90 vulnerable %.2f outside plausible band", agg.Vulnerable[90])
	}
}

func TestZeroDataDeratesMoreThanRandom(t *testing.T) {
	study := buildStudy(t, uarch.POWER10())
	reports := study.PerWorkload([]int{50})
	byName := map[string]Report{}
	for _, r := range reports {
		byName[r.Name] = r
	}
	z, r := byName["st_dd1_zero"], byName["st_dd1_random"]
	if z.Name == "" || r.Name == "" {
		t.Fatal("missing testcases")
	}
	// Zero-initialized data toggles far less; with the same per-study
	// thresholds this cannot yield less total derating than random data.
	if z.TotalDerating(50) < r.TotalDerating(50)-0.05 {
		t.Errorf("zero-init derating %.2f well below random %.2f",
			z.TotalDerating(50), r.TotalDerating(50))
	}
}

// TestPOWER10DeratesBetterThanPOWER9 reproduces Fig. 14's headline: at the
// POWER9-referenced thresholds, POWER10 shows higher runtime derating (the
// gap growing with VT) and lower static derating.
func TestPOWER10DeratesBetterThanPOWER9(t *testing.T) {
	vts := []int{10, 50, 90}
	s9 := buildStudy(t, uarch.POWER9())
	s10 := buildStudy(t, uarch.POWER10())
	thr := s9.Thresholds(vts)
	a9, err := s9.Aggregate(vts, thr)
	if err != nil {
		t.Fatal(err)
	}
	a10, err := s10.Aggregate(vts, thr)
	if err != nil {
		t.Fatal(err)
	}
	if a10.StaticDerating >= a9.StaticDerating {
		t.Errorf("static derating P10 %.3f >= P9 %.3f (paper: ~10%% lower on P10)",
			a10.StaticDerating, a9.StaticDerating)
	}
	for _, vt := range vts {
		if a10.RuntimeDerating[vt] <= a9.RuntimeDerating[vt] {
			t.Errorf("VT=%d: runtime derating P10 %.3f <= P9 %.3f",
				vt, a10.RuntimeDerating[vt], a9.RuntimeDerating[vt])
		}
	}
	gapLow := a10.RuntimeDerating[10] - a9.RuntimeDerating[10]
	gapHigh := a10.RuntimeDerating[90] - a9.RuntimeDerating[90]
	if gapHigh <= gapLow {
		t.Errorf("derating gap does not widen with VT: %.3f -> %.3f", gapLow, gapHigh)
	}
}

func TestAggregateRequiresRuns(t *testing.T) {
	s := NewStudy(uarch.POWER10())
	if _, err := s.Aggregate([]int{10}, nil); err == nil {
		t.Error("empty study aggregated")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if q := quantile(vals, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := quantile(vals, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := quantile(vals, 0.5); q != 3 {
		t.Errorf("q0.5 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}
