// Package sweep is the shared experiment-sweep driver behind p10bench and
// p10coord. Both commands execute the same catalog through the same loop and
// print the same deterministic stdout — which is what makes the distributed
// fabric's contract checkable at all: `p10coord` piping its sweep through a
// worker fleet must produce output byte-identical to `p10bench` running
// alone, and sharing this driver removes every source of divergence except
// the execution substrate under test.
//
// The stdout contract: experiment banners and tables render in catalog
// order, and the closing runner summary depends only on the request sequence
// (cache hits and misses), never on worker count, scheduling, or where a
// simulation physically ran. Timing, pool pressure, and failure accounting
// are scheduling-dependent and stay on stderr.
package sweep

import (
	"context"
	"fmt"
	"io"
	"time"

	"power10sim/internal/experiments"
	"power10sim/internal/progress"
	"power10sim/internal/runner"
	"power10sim/internal/telemetry"
)

// Renderer is the one-method surface every experiment result exposes.
type Renderer interface{ Table() string }

// Experiment is one catalog entry: a stable name (the -exp filter key), the
// stdout banner title, and the runner.
type Experiment struct {
	Name, Title string
	Run         func(experiments.Options) (Renderer, error)
}

// Wrap adapts an experiment constructor's concrete result type to Renderer.
func Wrap[T Renderer](f func(experiments.Options) (T, error)) func(experiments.Options) (Renderer, error) {
	return func(o experiments.Options) (Renderer, error) {
		r, err := f(o)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// Catalog returns the paper's experiments in publication order — the order
// their tables appear on stdout.
func Catalog() []Experiment {
	return []Experiment{
		{"tableI", "Table I: chip features & efficiency projections", Wrap(experiments.TableI)},
		{"headline", "Section II-B headline: 1.3x perf at 0.5x power (2.6x perf/W)", Wrap(experiments.Headline)},
		{"fig2", "Fig. 2: optimal pipeline depth analysis", Wrap(experiments.Fig2)},
		{"fig4", "Fig. 4: per-unit design-change performance contributions", Wrap(experiments.Fig4)},
		{"fig5", "Fig. 5: DGEMM flops/cycle and core power (VSU vs MMA)", Wrap(experiments.Fig5)},
		{"fig6", "Fig. 6: ResNet-50 / BERT-Large end-to-end inference", Wrap(experiments.Fig6)},
		{"fig10", "Fig. 10: APEX core model vs chip model", Wrap(experiments.Fig10)},
		{"fig11", "Fig. 11: M1-linked power-model error vs inputs", Wrap(experiments.Fig11)},
		{"fig12", "Fig. 12: top-down vs bottom-up power models", Wrap(experiments.Fig12)},
		{"fig13", "Fig. 13: latch derating across testcase suites", Wrap(experiments.Fig13)},
		{"fig14", "Fig. 14: POWER9 vs POWER10 derating", Wrap(experiments.Fig14)},
		{"fig15", "Fig. 15: core power proxy accuracy and granularity", Wrap(experiments.Fig15)},
		{"proxies", "Section III-A: Chopstix-style proxy extraction", Wrap(experiments.ProxyStats)},
		{"apex", "Section III-C: APEX speedup and accuracy", Wrap(experiments.APEXSpeedup)},
		{"wof", "Section IV: Workload Optimized Frequency and droop control", Wrap(experiments.WOF)},
		{"socket", "Socket level: PFLY/CLY yield and up-to-3x efficiency", Wrap(experiments.Socket)},
	}
}

// Outcome summarizes one driver pass for the caller's exit-status logic.
type Outcome struct {
	// Ran counts experiments attempted (after the filter).
	Ran int
	// Failed lists experiments that returned an error.
	Failed []string
	// Elapsed is the whole sweep's wall time.
	Elapsed time.Duration
}

// Run drives the catalog in order: banner, experiment, table. A filter
// selects one experiment by name (empty runs all); ctx cancellation stops
// between experiments (in-flight simulations are canceled through the pool's
// own context). Tables go to w — the deterministic stdout stream — and every
// lifecycle event is published on opt.Progress. Publishes KindSweepDone when
// the loop ends.
func Run(ctx context.Context, w io.Writer, cat []Experiment, filter string, opt experiments.Options,
	reg *telemetry.Registry, tr *telemetry.Tracer) Outcome {
	expSeconds := telemetry.ExpBuckets(0.001, 4, 10)
	var out Outcome
	start := time.Now()
	for _, e := range cat {
		if filter != "" && e.Name != filter {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		out.Ran++
		fmt.Fprintf(w, "=== %s ===\n", e.Title)
		opt.Progress.Publish(progress.Event{Kind: progress.KindExperimentBegun, Experiment: e.Name})
		expStart := time.Now()
		sp := tr.Begin("exp:"+e.Name, "experiment")
		r, err := e.Run(opt)
		sp.End()
		elapsed := time.Since(expStart)
		reg.Counter("experiments_run_total", telemetry.L("exp", e.Name)).Inc()
		reg.Histogram("experiment_seconds", expSeconds, telemetry.L("exp", e.Name)).Observe(elapsed.Seconds())
		if err != nil {
			out.Failed = append(out.Failed, e.Name)
			opt.Progress.Publish(progress.Event{Kind: progress.KindExperimentFailed,
				Experiment: e.Name, Err: err.Error(), Elapsed: elapsed.Seconds()})
			continue
		}
		fmt.Fprint(w, r.Table())
		fmt.Fprintln(w)
		opt.Progress.Publish(progress.Event{Kind: progress.KindExperimentDone,
			Experiment: e.Name, Elapsed: elapsed.Seconds()})
	}
	out.Elapsed = time.Since(start)
	opt.Progress.Publish(progress.Event{Kind: progress.KindSweepDone, Elapsed: out.Elapsed.Seconds()})
	return out
}

// Summary renders the cache-effectiveness line that closes the sweep's
// stdout. Hits and misses depend only on the request sequence, so this line
// is part of the byte-identical contract.
func Summary(w io.Writer, st runner.Stats) {
	total := st.Hits + st.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(st.Hits) / float64(total)
	}
	fmt.Fprintf(w, "runner: %d simulation requests, %d unique runs, %d cache hits (%.1f%%)\n",
		total, st.Misses, st.Hits, pct)
}

// Totals renders the scheduling-dependent pool diagnostics (stderr).
func Totals(w io.Writer, st runner.Stats, workers int, elapsed time.Duration) {
	fmt.Fprintf(w, "total: %.1fs with %d workers, peak in-flight %d, total queue wait %.2fs\n",
		elapsed.Seconds(), workers, st.PeakInFlight, st.QueueWait.Seconds())
}

// DiskTotals renders the persistent-cache traffic line (stderr).
func DiskTotals(w io.Writer, st runner.Stats, dir string) {
	fmt.Fprintf(w, "diskcache: %d hits, %d misses, %d B read, %d B written (%s)\n",
		st.DiskHits, st.DiskMisses, st.DiskReadBytes, st.DiskWrittenBytes, dir)
}
