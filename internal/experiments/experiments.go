// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulation substrate. Each experiment returns a typed
// result with a text rendering; cmd/p10bench prints them and the repository
// root's bench harness wraps them as testing benchmarks.
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"power10sim/internal/power"
	"power10sim/internal/progress"
	"power10sim/internal/runner"
	"power10sim/internal/sampling"
	"power10sim/internal/telemetry"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// Options tunes experiment cost and execution.
type Options struct {
	// Quick halves workload budgets (subject to the 4096-instruction
	// floor) for fast benchmark runs.
	Quick bool
	// Jobs bounds parallel fan-out in loops that do not go through the
	// simulation runner (the socket Monte Carlo, the APEX figure sweep):
	// 0 means GOMAXPROCS, 1 forces serial execution.
	Jobs int
	// Runner executes and memoizes every simulation issued through RunOn
	// and the batched figure loops. When nil, a process-wide shared runner
	// (GOMAXPROCS workers) is used, so repeated baseline points are
	// simulated once per process.
	Runner *runner.Runner
	// Metrics, when non-nil, receives per-batch request counters. Per-run
	// metrics come from instrumenting the Runner directly.
	Metrics *telemetry.Registry
	// Trace, when non-nil, receives a span per batched fan-out so sweeps
	// show where wall-clock goes. Nil disables tracing at zero cost.
	Trace *telemetry.Tracer
	// Failures, when non-nil, switches batched sweeps into tolerant mode:
	// a failed simulation point no longer aborts its figure — the point is
	// logged here and the figure renders a tagged partial row, so one bad
	// run cannot void an entire sweep. Nil keeps the strict legacy
	// behavior (first error aborts the batch).
	Failures *FailureLog
	// Progress, when non-nil, receives a batch_submitted event per batched
	// fan-out (per-simulation events come from the Runner's own bus; see
	// runner.SetBus). Nil — or a bus nobody subscribed to — is free.
	Progress *progress.Bus
	// Sample, when non-nil, routes every simulation issued through RunOn and
	// the batched figure loops to the SimPoint-style sampling engine
	// (internal/sampling): representative intervals are timed and the rest
	// extrapolated. Fault-injection requests still run full (see
	// runner.Request.Sample). Nil — the default — preserves the
	// byte-identical full-simulation path.
	Sample *sampling.Spec
}

// FailureLog accumulates per-point simulation failures across a tolerant
// sweep. It is safe for concurrent use; cmd/p10bench prints its summary at
// end of sweep and exits nonzero when it is non-empty.
type FailureLog struct {
	mu      sync.Mutex
	entries []string
}

// Add records one failed point.
func (l *FailureLog) Add(context string, err error) {
	if l == nil || err == nil {
		return
	}
	l.mu.Lock()
	l.entries = append(l.entries, fmt.Sprintf("%s: %v", context, err))
	l.mu.Unlock()
}

// Count returns the number of recorded failures.
func (l *FailureLog) Count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Summary renders the failure list ("" when clean).
func (l *FailureLog) Summary() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d simulation point(s) failed:\n", len(l.entries))
	for _, e := range l.entries {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// scale applies the option's budget scaling: quick mode halves the budget.
func (o Options) scale(budget uint64) uint64 {
	if o.Quick {
		budget /= 2
	}
	if budget < 4096 {
		budget = 4096
	}
	return budget
}

// scaleWarmup leaves warmup unscaled: architectural warmup must cover the
// workload's working set regardless of how short the measurement window is
// (quick mode shortens only the measured region).
func (o Options) scaleWarmup(warmup uint64) uint64 { return warmup }

// maxSimCycles bounds any single simulation.
const maxSimCycles = 80_000_000

// sharedPool is the process-wide default runner: figures that revisit the
// same (config, workload, SMT) point — the headline, Table I, the ablation
// ladder, WOF, the socket study — share one memoized simulation.
var (
	sharedPool     *runner.Runner
	sharedPoolOnce sync.Once
)

// pool returns the runner simulations execute on.
func (o Options) pool() *runner.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	sharedPoolOnce.Do(func() { sharedPool = runner.New(0) })
	return sharedPool
}

// jobs returns the fan-out width for parallel loops outside the runner.
func (o Options) jobs() int {
	if o.Runner != nil {
		return o.Runner.Workers()
	}
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// request builds the runner request RunOn executes: in SMT mode each thread
// runs an equal share of the budget so aggregate work stays comparable to ST.
func (o Options) request(cfg *uarch.Config, w *workloads.Workload, smt int) runner.Request {
	if smt < 1 {
		smt = 1
	}
	budget := o.scale(w.Budget) / uint64(smt)
	warmup := o.scaleWarmup(w.Warmup)
	if warmup >= budget*uint64(smt) {
		warmup = budget * uint64(smt) / 2
	}
	return runner.Request{Cfg: cfg, W: w, SMT: smt, Budget: budget, Warmup: warmup,
		MaxCycles: maxSimCycles, Sample: o.Sample}
}

// RunOn simulates a workload on a config at an SMT level and returns the
// activity plus its power report. Execution goes through the options'
// memoizing runner: a repeated (config, workload, SMT, budget) point is
// simulated once per process.
func RunOn(cfg *uarch.Config, w *workloads.Workload, smt int, o Options) (*uarch.Activity, *power.Report, error) {
	res := o.pool().Do(o.request(cfg, w, smt))
	return res.Activity, res.Report, res.Err
}

// runBatch fans independent simulation requests across the runner and
// returns the results in request order, so batched figure loops render
// byte-identically to their original serial form. The first error in
// request order aborts the batch.
func runBatch(o Options, reqs []runner.Request) ([]runner.Result, error) {
	if o.Trace != nil {
		sp := o.Trace.Begin(fmt.Sprintf("batch:%d-reqs", len(reqs)), "experiments")
		defer sp.End()
	}
	o.Metrics.Counter("experiments_batch_requests_total").Add(uint64(len(reqs)))
	o.Progress.Publish(progress.Event{Kind: progress.KindBatchSubmitted, Count: len(reqs)})
	results := o.pool().RunAll(reqs)
	for i := range results {
		if results[i].Err != nil {
			return nil, results[i].Err
		}
	}
	return results, nil
}

// runBatchTolerant is runBatch under the graceful-degradation contract:
// with a FailureLog installed, failed points are logged and returned with
// their errors in place (callers skip them and render tagged partial rows)
// instead of aborting the whole batch. Without one it falls back to strict
// runBatch. The label contextualizes failures in the sweep summary.
func runBatchTolerant(o Options, label string, reqs []runner.Request) ([]runner.Result, error) {
	if o.Failures == nil {
		return runBatch(o, reqs)
	}
	if o.Trace != nil {
		sp := o.Trace.Begin(fmt.Sprintf("batch:%d-reqs", len(reqs)), "experiments")
		defer sp.End()
	}
	o.Metrics.Counter("experiments_batch_requests_total").Add(uint64(len(reqs)))
	o.Progress.Publish(progress.Event{Kind: progress.KindBatchSubmitted,
		Experiment: label, Count: len(reqs)})
	results := o.pool().RunAll(reqs)
	for i := range results {
		if results[i].Err != nil {
			req := reqs[i]
			ctx := label
			if req.W != nil && req.Cfg != nil {
				ctx = fmt.Sprintf("%s %s@%s/smt%d", label, req.W.Name, req.Cfg.Name, req.SMT)
			}
			o.Failures.Add(ctx, results[i].Err)
		}
	}
	return results, nil
}

// geomean of a slice.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// table is a tiny fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// sortedKeys returns a map's int keys ascending.
func sortedKeys[M ~map[int]float64](m M) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
