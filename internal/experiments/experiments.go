// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulation substrate. Each experiment returns a typed
// result with a text rendering; cmd/p10bench prints them and the repository
// root's bench harness wraps them as testing benchmarks.
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"power10sim/internal/power"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// Options tunes experiment cost.
type Options struct {
	// Quick divides workload budgets by 4 for fast benchmark runs.
	Quick bool
}

// scale applies the option's budget scaling.
func (o Options) scale(budget uint64) uint64 {
	if o.Quick {
		budget /= 2
	}
	if budget < 4096 {
		budget = 4096
	}
	return budget
}

// scaleWarmup leaves warmup unscaled: architectural warmup must cover the
// workload's working set regardless of how short the measurement window is
// (quick mode shortens only the measured region).
func (o Options) scaleWarmup(warmup uint64) uint64 { return warmup }

// maxSimCycles bounds any single simulation.
const maxSimCycles = 80_000_000

// RunOn simulates a workload on a config at an SMT level and returns the
// activity plus its power report. In SMT mode each thread runs an equal
// share of the budget so aggregate work stays comparable to ST.
func RunOn(cfg *uarch.Config, w *workloads.Workload, smt int, o Options) (*uarch.Activity, *power.Report, error) {
	if smt < 1 {
		smt = 1
	}
	budget := o.scale(w.Budget) / uint64(smt)
	warmup := o.scaleWarmup(w.Warmup)
	if warmup >= budget*uint64(smt) {
		warmup = budget * uint64(smt) / 2
	}
	var streams []trace.Stream
	for i := 0; i < smt; i++ {
		streams = append(streams, trace.NewVMStream(w.Prog, budget))
	}
	res, err := uarch.Simulate(cfg, streams, maxSimCycles, uarch.WithWarmup(warmup))
	if err != nil {
		return nil, nil, fmt.Errorf("%s on %s (SMT%d): %w", w.Name, cfg.Name, smt, err)
	}
	rep := power.NewModel(cfg).Report(&res.Activity)
	return &res.Activity, rep, nil
}

// geomean of a slice.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// table is a tiny fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// sortedKeys returns a map's int keys ascending.
func sortedKeys[M ~map[int]float64](m M) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
