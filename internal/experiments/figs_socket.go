package experiments

import (
	"fmt"

	"power10sim/internal/runner"
	"power10sim/internal/socket"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// SocketResult is the chip/socket-level yield and efficiency study
// (Sections III-C and IV-A: absolute power projections feeding WOF sort,
// PFLY and CLY analysis).
type SocketResult struct {
	CLY15of16 float64 // core-limited yield selling 15 of 16 cores
	CLY16of16 float64 // without the spare core
	// SortHeavy/SortLight: yield-safe frequency scales for the stressmark
	// and a memory-bound workload (the WOF spread).
	SortHeavy, SortLight float64
	// PFLYAtNominal is the power/frequency-limited yield at nominal
	// frequency for the stressmark.
	PFLYAtNominal float64
	// Efficiency vs the POWER9 single-chip reference on SPECint-class work.
	Efficiency socket.Efficiency
}

// Socket runs the yield and socket-efficiency analyses. The four core
// simulations go through the runner as one batch, and the Monte Carlo
// trials fan across the options' job count (seeded per trial, so the
// estimates are identical at any parallelism).
func Socket(o Options) (*SocketResult, error) {
	cfg10 := socket.POWER10Socket()
	jobs := o.jobs()
	trials := 1500
	if o.Quick {
		trials = 400
	}
	res := &SocketResult{
		CLY15of16: socket.CLYJobs(cfg10, trials, jobs),
	}
	noSpare := cfg10
	noSpare.FunctionalCores = 16
	res.CLY16of16 = socket.CLYJobs(noSpare, trials, jobs)

	p9, p10 := uarch.POWER9(), uarch.POWER10()
	w := workloads.Compress()
	batch, err := runBatch(o, []runner.Request{
		o.request(p10, workloads.Stressmark(true), 1),
		o.request(p10, workloads.GraphOpt(), 1),
		o.request(p9, w, 1),
		o.request(p10, w, 1),
	})
	if err != nil {
		return nil, err
	}
	heavyRep, lightRep := batch[0].Report, batch[1].Report
	res.SortHeavy = socket.SortPointJobs(cfg10, heavyRep, 0.9, trials/4, jobs)
	res.SortLight = socket.SortPointJobs(cfg10, lightRep, 0.9, trials/4, jobs)
	res.PFLYAtNominal = socket.PFLYJobs(cfg10, heavyRep, 1.0, trials/4, jobs)

	a9, rep9 := batch[2].Activity, batch[2].Report
	a10, rep10 := batch[3].Activity, batch[3].Report
	eff, err := socket.CompareEfficiencyJobs(socket.POWER9Socket(), a9.IPC(), rep9,
		cfg10, a10.IPC(), rep10, trials/4, jobs)
	if err != nil {
		return nil, err
	}
	res.Efficiency = eff
	return res, nil
}

// Table renders the socket study.
func (r *SocketResult) Table() string {
	t := &table{header: []string{"metric", "measured", "paper / note"}}
	t.add("CLY selling 15 of 16 cores", pct(r.CLY15of16), "the 16th core is the yield spare")
	t.add("CLY selling 16 of 16 cores", pct(r.CLY16of16), "(why 15 functional cores ship)")
	t.add("PFLY at nominal F (stressmark)", pct(r.PFLYAtNominal), "feeds sort selection")
	t.add("sort point, stressmark", fmt.Sprintf("%.2fx", r.SortHeavy), "power-limited")
	t.add("sort point, memory-bound", fmt.Sprintf("%.2fx", r.SortLight), "WOF headroom")
	t.add("socket perf vs POWER9", fmt.Sprintf("%.2fx", r.Efficiency.PerfRatio), "2.5x cores x per-core gain")
	t.add("socket power vs POWER9", fmt.Sprintf("%.2fx", r.Efficiency.PowerRatio), "")
	t.add("socket efficiency gain", fmt.Sprintf("%.2fx", r.Efficiency.Gain), "up to 3x (Table I)")
	return t.String()
}
