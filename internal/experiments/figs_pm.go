package experiments

import (
	"fmt"
	"sort"

	"power10sim/internal/pmgmt"
	"power10sim/internal/runner"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// ---------------------------------------------------------------------------
// Fig. 15(a)/(b): Core Power Proxy
// ---------------------------------------------------------------------------

// Fig15Result is the proxy design-space study.
type Fig15Result struct {
	// AccuracyByCounters is Fig. 15(a): active-power error (%) vs counter
	// budget under hardware constraints.
	AccuracyByCounters map[int]float64
	// SelectedCounters is the final 16-counter design's input list.
	SelectedCounters []string
	// SelectedError is its active-power error (%).
	SelectedError float64
	// ErrorByGranularity is Fig. 15(b): total-power error (%) vs
	// prediction window in cycles.
	ErrorByGranularity map[uint64]float64
}

// Fig15 designs the power proxy and evaluates both accuracy curves.
func Fig15(o Options) (*Fig15Result, error) {
	cfg := uarch.POWER10()
	w := workloads.Compress()
	// Fingerprint the full input set: the corpus identity plus the
	// granularity workload and its scaled budget (the corpus fingerprint
	// alone would miss a budget change to the Fig. 15(b) replay).
	_, _, fp := modelInputs(cfg, o)
	fp += fmt.Sprintf("|gran=%s|budget=%d", runner.WorkloadFingerprint(w), o.scale(w.Budget))
	return runner.CachedJSON(o.pool(), "fig15", fp, func() (*Fig15Result, error) {
		ds, err := modelDataset(cfg, o)
		if err != nil {
			return nil, err
		}
		curve, err := pmgmt.AccuracyCurve(ds, []int{2, 4, 8, 16, 24})
		if err != nil {
			return nil, err
		}
		px, err := pmgmt.DesignProxy(ds, 16)
		if err != nil {
			return nil, err
		}
		mk := func() trace.Stream { return trace.NewVMStream(w.Prog, o.scale(w.Budget)) }
		gran, err := pmgmt.GranularityError(px, cfg, mk,
			[]uint64{10, 25, 50, 100, 500, 2000, 10000}, ds.IdleFloor)
		if err != nil {
			return nil, err
		}
		return &Fig15Result{
			AccuracyByCounters: curve,
			SelectedCounters:   px.Counters,
			SelectedError:      px.ActiveError,
			ErrorByGranularity: gran,
		}, nil
	})
}

// Table renders Fig. 15.
func (r *Fig15Result) Table() string {
	t := &table{header: []string{"counters", "active-power error"}}
	for _, n := range sortedKeys(r.AccuracyByCounters) {
		t.add(fmt.Sprintf("%d", n), f2(r.AccuracyByCounters[n])+"%")
	}
	out := t.String()
	out += fmt.Sprintf("selected 16-counter proxy: %.1f%% active error (paper 9.8%%; <5%% incl. static)\n", r.SelectedError)
	out += "counters: "
	for i, c := range r.SelectedCounters {
		if i > 0 {
			out += ", "
		}
		out += c
	}
	out += "\n\n"
	t2 := &table{header: []string{"window (cycles)", "total-power error"}}
	var wins []uint64
	for w := range r.ErrorByGranularity {
		wins = append(wins, w)
	}
	sort.Slice(wins, func(a, b int) bool { return wins[a] < wins[b] })
	for _, w := range wins {
		t2.add(fmt.Sprintf("%d", w), f2(r.ErrorByGranularity[w])+"%")
	}
	out += t2.String() + "paper Fig. 15(b): near-best accuracy at >=50-cycle windows, degrading sharply below\n"
	return out
}

// ---------------------------------------------------------------------------
// WOF and throttling (Sections IV-A/IV-B)
// ---------------------------------------------------------------------------

// WOFRow is one workload's boost entry.
type WOFRow struct {
	Workload    string
	EffCapRatio float64
	Boost       float64
}

// WOFResult is the workload-optimized-frequency study.
type WOFResult struct {
	Rows []WOFRow
	// DDS droop-mitigation summary on a phase-change workload.
	DroopWithout, DroopWith pmgmt.DroopReport
}

// WOF characterizes the envelope with the MMA stressmark and computes each
// workload's deterministic boost, then exercises the droop sensor on a
// current series with an abrupt phase change.
func WOF(o Options) (*WOFResult, error) {
	cfg := uarch.POWER10()
	_, stressRep, err := RunOn(cfg, workloads.Stressmark(true), 1, o)
	if err != nil {
		return nil, err
	}
	wof := pmgmt.NewWOF(stressRep)
	res := &WOFResult{}
	ws := append(workloads.SPECintSuite(), workloads.Stressmark(true), workloads.ActiveIdle())
	reqs := make([]runner.Request, len(ws))
	for i, w := range ws {
		reqs[i] = o.request(cfg, w, 1)
	}
	batch, err := runBatch(o, reqs)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		rep := batch[i].Report
		res.Rows = append(res.Rows, WOFRow{
			Workload:    w.Name,
			EffCapRatio: wof.EffCapRatio(rep),
			Boost:       wof.Boost(rep),
		})
	}
	// Droop study: a quiet phase followed by the stressmark's current
	// profile creates the abrupt activity swing of Section IV-B.
	stress := workloads.Stressmark(true)
	series, err := pmgmt.CurrentSeries(cfg, func() trace.Stream {
		return trace.NewVMStream(stress.Prog, o.scale(stress.Budget))
	}, 200, maxSimCycles)
	if err != nil {
		return nil, err
	}
	// Normalize the current series to the droop model's design scale (the
	// stressmark swings the rail to ~2.2x the unit current) and prepend a
	// quiet phase to create the abrupt swing.
	var peak float64
	for _, v := range series {
		if v > peak {
			peak = v
		}
	}
	if peak > 0 {
		for i := range series {
			series[i] *= 2.5 / peak
		}
	}
	quiet := make([]float64, 40)
	for i := range quiet {
		quiet[i] = 0.2
	}
	series = append(quiet, series...)
	dds := pmgmt.DefaultDDS()
	res.DroopWithout = dds.SimulateDroop(series, false)
	res.DroopWith = dds.SimulateDroop(series, true)
	return res, nil
}

// Table renders the WOF study.
func (r *WOFResult) Table() string {
	t := &table{header: []string{"workload", "effcap ratio", "WOF boost"}}
	rows := append([]WOFRow{}, r.Rows...)
	sort.Slice(rows, func(a, b int) bool { return rows[a].Boost > rows[b].Boost })
	for _, row := range rows {
		t.add(row.Workload, f2(row.EffCapRatio), fmt.Sprintf("%.3fx", row.Boost))
	}
	out := t.String()
	out += fmt.Sprintf("DDS: violations %d -> %d, min margin %.3f -> %.3f, firings %d, throttled slots %d\n",
		r.DroopWithout.Violations, r.DroopWith.Violations,
		r.DroopWithout.MinMargin, r.DroopWith.MinMargin,
		r.DroopWith.SensorFirings, r.DroopWith.ThrottledSlots)
	return out
}
