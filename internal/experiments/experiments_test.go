package experiments

import (
	"reflect"
	"strings"
	"testing"

	"power10sim/internal/runner"
	"power10sim/internal/sampling"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// The heavyweight experiments are exercised end to end by the repository's
// benchmark harness; these tests cover the cheap ones plus the shared
// plumbing so `go test` alone validates the experiment layer.

var quick = Options{Quick: true}

func TestScale(t *testing.T) {
	if got := quick.scale(100_000); got != 50_000 {
		t.Errorf("scale = %d", got)
	}
	if got := quick.scale(100); got != 4096 {
		t.Errorf("floor = %d", got)
	}
	if got := quick.scaleWarmup(0); got != 0 {
		t.Errorf("zero warmup scaled to %d", got)
	}
	full := Options{}
	if got := full.scale(100_000); got != 100_000 {
		t.Errorf("full scale = %d", got)
	}
}

// TestSimulationDeterminism is the precondition that makes the runner's
// memoization sound: the same (config, workload, SMT) point must produce
// bit-identical uarch activity and power reports on every run.
func TestSimulationDeterminism(t *testing.T) {
	for _, smt := range []int{1, 2} {
		// Rebuild the workload each time: determinism must hold across
		// independent constructions, not just reuse of one Program.
		o := Options{Quick: true, Runner: runner.New(1)}
		a1, r1, err := RunOn(uarch.POWER10(), workloads.Compress(), smt, o)
		if err != nil {
			t.Fatal(err)
		}
		o2 := Options{Quick: true, Runner: runner.New(1)}
		a2, r2, err := RunOn(uarch.POWER10(), workloads.Compress(), smt, o2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("SMT%d: activity differs between identical runs", smt)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("SMT%d: power report differs between identical runs", smt)
		}
	}
}

// TestRunOnSerialVsParallelPool checks the harness-level guarantee: routing
// the same request through a serial and a many-worker pool yields identical
// results.
func TestRunOnSerialVsParallelPool(t *testing.T) {
	serial := Options{Quick: true, Runner: runner.New(1)}
	par := Options{Quick: true, Runner: runner.New(8)}
	reqs := func(o Options) []runner.Request {
		return []runner.Request{
			o.request(uarch.POWER9(), workloads.Compress(), 1),
			o.request(uarch.POWER10(), workloads.Compress(), 1),
			o.request(uarch.POWER10(), workloads.Interp(), 2),
		}
	}
	rs, err := runBatch(serial, reqs(serial))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := runBatch(par, reqs(par))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if !reflect.DeepEqual(rs[i].Activity, rp[i].Activity) {
			t.Errorf("request %d: activity differs between pools", i)
		}
		if !reflect.DeepEqual(rs[i].Report, rp[i].Report) {
			t.Errorf("request %d: report differs between pools", i)
		}
	}
}

func TestFig2Experiment(t *testing.T) {
	r, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	for i, tgt := range r.Targets {
		if r.Optima[i] != 27 {
			t.Errorf("target %.1f: optimum %d, want 27", tgt, r.Optima[i])
		}
	}
	if !strings.Contains(r.Table(), "27") {
		t.Error("table missing optimum")
	}
}

func TestFig5Experiment(t *testing.T) {
	r, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	vsuX := r.Rows[1].RelFlops
	mmaX := r.Rows[2].RelFlops
	if vsuX < 1.6 || vsuX > 2.4 {
		t.Errorf("P10 VSU speedup %.2f outside [1.6, 2.4] (paper 1.95)", vsuX)
	}
	if mmaX < 3.2 || mmaX > 6.0 {
		t.Errorf("P10 MMA speedup %.2f outside [3.2, 6.0] (paper 5.47)", mmaX)
	}
	if mmaX <= vsuX {
		t.Error("MMA did not beat VSU")
	}
	// Power ordering: both P10 codings below P9; MMA above P10-VSU.
	if r.Rows[1].RelPower >= 1 || r.Rows[2].RelPower >= 1 {
		t.Errorf("P10 power not below P9: VSU %.2f MMA %.2f", r.Rows[1].RelPower, r.Rows[2].RelPower)
	}
	if r.Rows[2].RelPower <= r.Rows[1].RelPower {
		t.Errorf("MMA power %.2f not above VSU %.2f (paper: -24%% vs -32%%)",
			r.Rows[2].RelPower, r.Rows[1].RelPower)
	}
}

func TestAPEXExperiment(t *testing.T) {
	r, err := APEXSpeedup(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup < 50 {
		t.Errorf("APEX speedup %.0f too small", r.Speedup)
	}
	rel := (r.OnTheFlyPower - r.ReferencePower) / r.ReferencePower
	if rel > 1e-9 || rel < -1e-9 {
		t.Errorf("fast path power %.6f != reference %.6f", r.OnTheFlyPower, r.ReferencePower)
	}
	// Without Options.Sample the sampled flow must not run (and must not
	// print): default output stays byte-identical to the pre-sampling repo.
	if r.SampledWindows != 0 || strings.Contains(r.Table(), "sampled") {
		t.Error("sampled flow ran without Options.Sample")
	}
	spec := sampling.DefaultSpec()
	rs, err := APEXSpeedup(Options{Quick: true, Sample: &spec})
	if err != nil {
		t.Fatal(err)
	}
	// Compounding beyond the platform factor needs a long trace and is
	// asserted in apex's own tests; here the flow just has to run and
	// stay in the same accounting regime.
	if rs.SampledWindows == 0 || rs.SampledSpeedup <= 0 {
		t.Errorf("sampled flow did not run: %d windows, %.0fx", rs.SampledWindows, rs.SampledSpeedup)
	}
	if !strings.Contains(rs.Table(), "sampled-APEX speedup") {
		t.Error("sampled rows missing from table under Options.Sample")
	}
}

func TestProxyExperiment(t *testing.T) {
	r, err := ProxyStats(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalProxies < 15 {
		t.Errorf("%d proxies", r.TotalProxies)
	}
	if r.MaxSnippet > 22_000 {
		t.Errorf("snippet cap violated: %d", r.MaxSnippet)
	}
	if !strings.Contains(r.Table(), "TOTAL") {
		t.Error("table missing totals row")
	}
}

func TestFig13Fig14Experiments(t *testing.T) {
	r13, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r13.Reports) != 15 {
		t.Errorf("fig13 has %d rows, want 15 (12 synthetic + 3 spec)", len(r13.Reports))
	}
	r14, err := Fig14(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, vt := range r14.VTs {
		if r14.P10.RuntimeDerating[vt] < r14.P9.RuntimeDerating[vt] {
			t.Errorf("VT=%d: P10 runtime derating below P9", vt)
		}
	}
	if r14.P10.StaticDerating >= r14.P9.StaticDerating {
		t.Error("P10 static derating not lower than P9")
	}
}

// TestTolerantSweepDegradesGracefully covers the graceful-degradation
// contract: with a FailureLog installed, a failing simulation point is logged
// and returned in place instead of aborting the batch, and partial figures
// render tagged rows.
func TestTolerantSweepDegradesGracefully(t *testing.T) {
	pool := runner.New(2)
	pool.SetPolicy(runner.Policy{MaxAttempts: 1})
	o := Options{Quick: true, Runner: pool, Failures: new(FailureLog)}
	good := o.request(uarch.POWER10(), workloads.Compress(), 1)
	bad := o.request(uarch.POWER10(), workloads.Interp(), 1)
	bad.Chaos = &runner.ChaosSpec{FailFirst: 1 << 30}
	results, err := runBatchTolerant(o, "test-sweep", []runner.Request{good, bad})
	if err != nil {
		t.Fatalf("tolerant batch aborted: %v", err)
	}
	if results[0].Err != nil {
		t.Errorf("healthy point failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("chaos point did not fail")
	}
	if o.Failures.Count() != 1 {
		t.Errorf("failure log has %d entries, want 1", o.Failures.Count())
	}
	if s := o.Failures.Summary(); !strings.Contains(s, "test-sweep") ||
		!strings.Contains(s, "interp") {
		t.Errorf("summary lacks context:\n%s", s)
	}

	// Strict mode (no log) keeps the legacy abort-on-first-error contract.
	strict := Options{Quick: true, Runner: pool}
	if _, err := runBatchTolerant(strict, "strict", []runner.Request{bad}); err == nil {
		t.Error("strict mode swallowed the failure")
	}

	// Partial figures render failed points as tagged rows.
	r13 := &Fig13Result{VTs: []int{10, 50, 90}, Failed: []string{"st_dd0_zero"}}
	if tab := r13.Table(); !strings.Contains(tab, "st_dd0_zero") || !strings.Contains(tab, "FAILED") {
		t.Errorf("Fig13 table missing tagged partial row:\n%s", tab)
	}
	r14 := &Fig14Result{VTs: nil, Failed: []string{"smt4_spec"}}
	if tab := r14.Table(); !strings.Contains(tab, "PARTIAL") || !strings.Contains(tab, "smt4_spec") {
		t.Errorf("Fig14 table missing partial notice:\n%s", tab)
	}

	// A nil log is inert (shared Options value passed around by copy).
	var nilLog *FailureLog
	nilLog.Add("x", err)
	if nilLog.Count() != 0 || nilLog.Summary() != "" {
		t.Error("nil FailureLog not inert")
	}
}

func TestTableHelper(t *testing.T) {
	tb := &table{header: []string{"a", "bb"}}
	tb.add("x", "y")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "x") {
		t.Error("table rendering broken")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("table has wrong line count:\n%s", out)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean = %v", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("empty geomean = %v", g)
	}
}

func TestFig6Experiment(t *testing.T) {
	r, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Models) != 2 {
		t.Fatalf("%d models", len(r.Models))
	}
	for _, m := range r.Models {
		if len(m.Rows) != 3 {
			t.Fatalf("%s: %d rows", m.Model, len(m.Rows))
		}
		noMMA, mma := m.Rows[1].Speedup, m.Rows[2].Speedup
		if noMMA <= 1.3 || noMMA >= 3.5 {
			t.Errorf("%s no-MMA speedup %.2f outside [1.3, 3.5] (paper ~2.1-2.25)", m.Model, noMMA)
		}
		if mma <= noMMA {
			t.Errorf("%s: MMA speedup %.2f <= no-MMA %.2f", m.Model, mma, noMMA)
		}
		if m.Rows[2].TotalInsts >= 0.9 {
			t.Errorf("%s: MMA did not shrink instruction count (%.2f)", m.Model, m.Rows[2].TotalInsts)
		}
	}
	// BERT gains more from the MMA; ResNet more from the core (Fig. 6).
	if r.Models[1].Rows[2].Speedup <= r.Models[0].Rows[2].Speedup-0.8 {
		t.Errorf("BERT MMA speedup unexpectedly far below ResNet")
	}
	if r.SocketFP32["ResNet-50"] < 5 || r.SocketFP32["ResNet-50"] > 14 {
		t.Errorf("socket FP32 %.1fx outside plausible band", r.SocketFP32["ResNet-50"])
	}
	if r.SocketINT8["ResNet-50"] <= r.SocketFP32["ResNet-50"] {
		t.Error("INT8 socket estimate not above FP32")
	}
	if !strings.Contains(r.Table(), "socket") {
		t.Error("table missing socket rows")
	}
}

func TestSocketExperiment(t *testing.T) {
	r, err := Socket(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.CLY15of16 <= r.CLY16of16 {
		t.Errorf("core sparing did not improve yield: %.2f vs %.2f", r.CLY15of16, r.CLY16of16)
	}
	if r.SortLight <= r.SortHeavy {
		t.Errorf("WOF spread missing: light %.2f <= heavy %.2f", r.SortLight, r.SortHeavy)
	}
	if r.Efficiency.Gain < 1.8 || r.Efficiency.Gain > 4.5 {
		t.Errorf("socket efficiency %.2fx outside [1.8, 4.5]", r.Efficiency.Gain)
	}
	if !strings.Contains(r.Table(), "CLY") {
		t.Error("table missing CLY rows")
	}
}
