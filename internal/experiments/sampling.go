package experiments

// This file is the error-bound validation harness for the SimPoint-style
// interval-sampling engine (internal/sampling): every workload family is run
// twice — once full, once sampled — across both generations and all SMT
// levels, and the harness fails if any point's CPI error exceeds
// sampling.CPIErrBound or its average-power error exceeds
// sampling.PowerErrBound. cmd/p10bench exposes it as -sample-mode=validate
// and the Makefile's sample-check target runs the quick subset.

import (
	"fmt"
	"math"
	"strings"

	"power10sim/internal/progress"
	"power10sim/internal/runner"
	"power10sim/internal/sampling"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// SamplePoint is one (workload, config, SMT) cell of the validation sweep.
type SamplePoint struct {
	Workload string
	Config   string
	SMT      int
	// Full-simulation ground truth.
	FullCPI   float64
	FullPower float64
	// Sampled estimate and its relative errors against ground truth.
	SampledCPI   float64
	SampledPower float64
	CPIErr       float64
	PowerErr     float64
	// Speedup is total trace instructions over timed instructions.
	Speedup float64
	// OK reports whether both errors are within the published bounds.
	OK bool
	// Err tags a point whose full or sampled simulation failed outright.
	Err error
}

// SampleValidation is the result of a sampled-vs-full validation sweep.
type SampleValidation struct {
	Spec   sampling.Spec
	Points []SamplePoint
}

// Failures counts points that failed to simulate or exceeded a bound.
func (v *SampleValidation) Failures() int {
	n := 0
	for i := range v.Points {
		if !v.Points[i].OK {
			n++
		}
	}
	return n
}

// Bounds returns a non-nil error when any point is out of bounds, so callers
// can treat the sweep as a single assertion.
func (v *SampleValidation) Bounds() error {
	if n := v.Failures(); n > 0 {
		return fmt.Errorf("sampling validation: %d of %d point(s) exceeded error bounds (CPI > %.0f%% or power > %.0f%%)",
			n, len(v.Points), sampling.CPIErrBound*100, sampling.PowerErrBound*100)
	}
	return nil
}

// Table renders the sweep with one row per point plus a geomean-speedup
// summary line.
func (v *SampleValidation) Table() string {
	t := &table{header: []string{"workload", "config", "SMT",
		"full CPI", "samp CPI", "CPI err", "full W", "samp W", "pwr err", "speedup", "status"}}
	var speedups []float64
	worstCPI, worstPow := 0.0, 0.0
	for i := range v.Points {
		p := &v.Points[i]
		if p.Err != nil {
			t.add(p.Workload, p.Config, fmt.Sprint(p.SMT),
				"-", "-", "-", "-", "-", "-", "-", "error: "+p.Err.Error())
			continue
		}
		status := "ok"
		if !p.OK {
			status = "FAIL"
		}
		t.add(p.Workload, p.Config, fmt.Sprint(p.SMT),
			f3(p.FullCPI), f3(p.SampledCPI), pct(p.CPIErr),
			f3(p.FullPower), f3(p.SampledPower), pct(p.PowerErr),
			fmt.Sprintf("%.1fx", p.Speedup), status)
		speedups = append(speedups, p.Speedup)
		worstCPI = math.Max(worstCPI, p.CPIErr)
		worstPow = math.Max(worstPow, p.PowerErr)
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "bounds: CPI <= %.0f%%, power <= %.0f%% | worst CPI err %s, worst power err %s, geomean speedup %.1fx\n",
		sampling.CPIErrBound*100, sampling.PowerErrBound*100, pct(worstCPI), pct(worstPow), geomean(speedups))
	return b.String()
}

// sampleFamilies returns one representative workload per family — a streaming
// FP kernel, an MMA GEMM, a SPECint-style integer program, an end-to-end AI
// inference trace, and the synthetic power-virus stressmark — plus a map of
// per-family substitutes for configs without MMA (the MMA GEMM's outer-product
// instructions cannot retire on POWER9, so its rows there run the VSU coding
// of the same problem).
func sampleFamilies() ([]*workloads.Workload, map[string]*workloads.Workload, error) {
	daxpy := workloads.Daxpy(4096, 12)
	size := workloads.GEMMSize{M: 16, N: 64, K: 256}
	dgemm, _, err := workloads.DGEMMMMA(size)
	if err != nil {
		return nil, nil, fmt.Errorf("sample-validate: %w", err)
	}
	dgemmVSU, _, err := workloads.DGEMMVSU(size)
	if err != nil {
		return nil, nil, fmt.Errorf("sample-validate: %w", err)
	}
	var intcompute *workloads.Workload
	for _, w := range workloads.SPECintSuite() {
		if w.Name == "intcompute" {
			intcompute = w
		}
	}
	if intcompute == nil {
		return nil, nil, fmt.Errorf("sample-validate: intcompute missing from SPECint suite")
	}
	resnet, err := workloads.ResNet50(false)
	if err != nil {
		return nil, nil, fmt.Errorf("sample-validate: %w", err)
	}
	fams := []*workloads.Workload{daxpy, dgemm, intcompute, resnet, workloads.Stressmark(false)}
	return fams, map[string]*workloads.Workload{dgemm.Name: dgemmVSU}, nil
}

// SampleValidate runs the sampled-vs-full error-bound sweep: each selected
// workload family on POWER9 and POWER10 at SMT1/4/8, once through the full
// timing model and once through the sampling engine, comparing CPI and
// average core power. An empty `only` selects every family; otherwise it
// filters by workload name (unknown names are an error, so a typo cannot
// silently validate nothing). Simulation failures tag their point rather
// than aborting the sweep; bound violations are reported by Failures and
// Bounds, not as an error from this function.
func SampleValidate(o Options, spec sampling.Spec, only []string) (*SampleValidation, error) {
	fams, subs, err := sampleFamilies()
	if err != nil {
		return nil, err
	}
	if len(only) > 0 {
		byName := map[string]*workloads.Workload{}
		for _, w := range fams {
			byName[w.Name] = w
		}
		var sel []*workloads.Workload
		for _, n := range only {
			w, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("sample-validate: unknown workload %q (families: daxpy, dgemm-mma, intcompute, resnet50, stressmark)", n)
			}
			sel = append(sel, w)
		}
		fams = sel
	}
	spec = spec.Normalized()
	configs := []*uarch.Config{uarch.POWER9(), uarch.POWER10()}
	smts := []int{1, 4, 8}

	v := &SampleValidation{Spec: spec}
	oFull, oSamp := o, o
	oFull.Sample = nil
	oSamp.Sample = &spec
	// Interleaved full/sampled request pairs, one pair per point, in render
	// order. RunAll memoizes and fans out across the pool.
	var reqs []runner.Request
	for _, fam := range fams {
		for _, cfg := range configs {
			w := fam
			if sub := subs[fam.Name]; sub != nil && !cfg.HasMMA {
				w = sub
			}
			for _, smt := range smts {
				v.Points = append(v.Points, SamplePoint{Workload: w.Name, Config: cfg.Name, SMT: smt})
				reqs = append(reqs, oFull.request(cfg, w, smt), oSamp.request(cfg, w, smt))
			}
		}
	}
	if o.Trace != nil {
		sp := o.Trace.Begin(fmt.Sprintf("batch:%d-reqs", len(reqs)), "experiments")
		defer sp.End()
	}
	o.Metrics.Counter("experiments_batch_requests_total").Add(uint64(len(reqs)))
	o.Progress.Publish(progress.Event{Kind: progress.KindBatchSubmitted,
		Experiment: "sample-validate", Count: len(reqs)})
	results := o.pool().RunAll(reqs)

	for i := range v.Points {
		p := &v.Points[i]
		full, samp := results[2*i], results[2*i+1]
		if full.Err != nil {
			p.Err = full.Err
		} else if samp.Err != nil {
			p.Err = samp.Err
		}
		if p.Err != nil {
			o.Failures.Add(fmt.Sprintf("sample-validate %s@%s/smt%d", p.Workload, p.Config, p.SMT), p.Err)
			continue
		}
		p.FullCPI = full.Activity.CPI()
		p.FullPower = full.Report.Total
		p.SampledCPI = samp.Activity.CPI()
		p.SampledPower = samp.Report.Total
		p.CPIErr = relErr(p.SampledCPI, p.FullCPI)
		p.PowerErr = relErr(p.SampledPower, p.FullPower)
		if samp.Sampling != nil {
			p.Speedup = samp.Sampling.Speedup()
		}
		p.OK = p.CPIErr <= sampling.CPIErrBound && p.PowerErr <= sampling.PowerErrBound
	}
	return v, nil
}

// relErr is |got-want|/|want|, with a zero reference meaning "exact or
// infinitely wrong".
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
