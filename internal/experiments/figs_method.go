package experiments

import (
	"fmt"

	"power10sim/internal/apex"
	"power10sim/internal/mlfit"
	"power10sim/internal/pipedepth"
	"power10sim/internal/powermodel"
	"power10sim/internal/proxy"
	"power10sim/internal/runner"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// ---------------------------------------------------------------------------
// Fig. 2: optimal pipeline depth
// ---------------------------------------------------------------------------

// Fig2Result holds the BIPS-vs-FO4 curves per power target.
type Fig2Result struct {
	FO4s    []int
	Targets []float64
	// BIPS[t][d] is performance at Targets[t], FO4s[d].
	BIPS [][]float64
	// Optima[t] is the best FO4 per target.
	Optima []int
}

// Fig2 sweeps the analytical pipeline model.
func Fig2(Options) (*Fig2Result, error) {
	p := pipedepth.DefaultParams()
	res := &Fig2Result{
		FO4s:    pipedepth.DefaultFO4Range(),
		Targets: []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
	}
	for _, tgt := range res.Targets {
		var row []float64
		for _, op := range p.Sweep(tgt, res.FO4s) {
			row = append(row, op.BIPS)
		}
		res.BIPS = append(res.BIPS, row)
		res.Optima = append(res.Optima, p.Optimal(tgt, res.FO4s).FO4)
	}
	return res, nil
}

// Table renders Fig. 2.
func (r *Fig2Result) Table() string {
	t := &table{header: []string{"power target", "optimal FO4", "BIPS at optimum"}}
	for i, tgt := range r.Targets {
		best := 0.0
		for _, b := range r.BIPS[i] {
			if b > best {
				best = b
			}
		}
		t.add(fmt.Sprintf("%.1fx", tgt), fmt.Sprintf("%d", r.Optima[i]), f3(best))
	}
	return t.String() + "paper: optimum stable at 27 FO4 across the 0.5x-1.0x power targets\n"
}

// ---------------------------------------------------------------------------
// Fig. 10: APEX core model vs chip model
// ---------------------------------------------------------------------------

// Fig10Point pairs the two models' operating points for one workload.
type Fig10Point struct {
	Workload   string
	Core, Chip apex.PowerIPCPoint
	// MemBound marks workloads with significant off-L2 traffic.
	MemBound bool
}

// Fig10Result is the Power/IPC scatter of Fig. 10.
type Fig10Result struct {
	Points []Fig10Point
}

// Fig10 runs the SPECint-like suite in SMT2 on the APEX core (infinite L2)
// and chip models. The per-workload extractions are independent and fan out
// across the options' job count; points are collected in suite order.
func Fig10(o Options) (*Fig10Result, error) {
	cfg := uarch.POWER10()
	suite := workloads.SPECintSuite()
	// The core-vs-chip pairs run epoch-windowed simulations outside the
	// Request shape, so the figure is persisted as one blob keyed on every
	// input: config, program content, and the scaled per-thread budgets.
	fp := fmt.Sprintf("%#v|interval=5000|maxcycles=%d", *cfg, uint64(maxSimCycles))
	for _, w := range suite {
		fp += fmt.Sprintf("|%s|budget=%d|warmup=%d",
			runner.WorkloadFingerprint(w), o.scale(w.Budget)/2, o.scaleWarmup(w.Warmup))
	}
	return runner.CachedJSON(o.pool(), "fig10", fp, func() (*Fig10Result, error) {
		points := make([]Fig10Point, len(suite))
		errs := make([]error, len(suite))
		runner.ForEach(o.jobs(), len(suite), func(i int) {
			w := suite[i]
			mk := func() []trace.Stream {
				budget := o.scale(w.Budget) / 2
				return []trace.Stream{
					trace.NewVMStream(w.Prog, budget),
					trace.NewVMStream(w.Prog, budget),
				}
			}
			core, chip, err := apex.CoreVsChip(cfg, w.Name, mk, 5000, maxSimCycles,
				uarch.WithWarmup(o.scaleWarmup(w.Warmup)))
			if err != nil {
				errs[i] = fmt.Errorf("fig10 %s: %w", w.Name, err)
				return
			}
			memBound := chip.IPC < core.IPC*0.85
			points[i] = Fig10Point{Workload: w.Name, Core: core, Chip: chip, MemBound: memBound}
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return &Fig10Result{Points: points}, nil
	})
}

// Table renders Fig. 10.
func (r *Fig10Result) Table() string {
	t := &table{header: []string{"workload", "core IPC", "core power", "chip IPC", "chip power", "memory-bound"}}
	for _, p := range r.Points {
		mb := ""
		if p.MemBound {
			mb = "yes"
		}
		t.add(p.Workload, f3(p.Core.IPC), f3(p.Core.Power), f3(p.Chip.IPC), f3(p.Chip.Power), mb)
	}
	return t.String() + "paper: memory-bound workloads shift substantially between core and chip models\n"
}

// ---------------------------------------------------------------------------
// Fig. 11 / Fig. 12: M1-linked power models
// ---------------------------------------------------------------------------

// Fig11Result is the error-vs-inputs study across modeling constraints.
type Fig11Result struct {
	Inputs []int
	// Curves maps constraint-set name -> error per input budget (%).
	Curves map[string]map[int]float64
}

// modelInputs enumerates the shared counter/power corpus: the workload set,
// the epoch length, and a content fingerprint over both plus the config —
// the blob-cache key every model-building figure derives from. The
// fingerprint is computable without running anything, so a warm sweep can
// skip straight to a cached figure result.
func modelInputs(cfg *uarch.Config, o Options) ([]*workloads.Workload, uint64, string) {
	ws := workloads.SPECintSuite()
	ws = append(ws, workloads.Stressmark(true), workloads.ActiveIdle())
	epoch := uint64(2500)
	if o.Quick {
		epoch = 4000
	}
	fp := fmt.Sprintf("%#v|epoch=%d", *cfg, epoch)
	for _, w := range ws {
		fp += "|" + runner.WorkloadFingerprint(w)
	}
	return ws, epoch, fp
}

// modelDataset builds the shared counter/power corpus, fanning the
// per-workload epoch collection across the options' job count. The corpus is
// persisted through the runner's blob cache, so the three figures sharing it
// collect it once per cache directory, not once per figure per process.
func modelDataset(cfg *uarch.Config, o Options) (*powermodel.Dataset, error) {
	ws, epoch, fp := modelInputs(cfg, o)
	return runner.CachedJSON(o.pool(), "modeldataset", fp, func() (*powermodel.Dataset, error) {
		return powermodel.CollectJobs(cfg, ws, epoch, o.jobs())
	})
}

// Fig11 fits top-down models at increasing input budgets under different
// modeling methods/constraints. Both the corpus and the greedy
// counter-selection fits are deterministic functions of the fingerprinted
// inputs, so the whole figure is blob-cached as one artifact.
func Fig11(o Options) (*Fig11Result, error) {
	cfg := uarch.POWER10()
	_, _, fp := modelInputs(cfg, o)
	return runner.CachedJSON(o.pool(), "fig11", fp, func() (*Fig11Result, error) {
		ds, err := modelDataset(cfg, o)
		if err != nil {
			return nil, err
		}
		res := &Fig11Result{
			Inputs: []int{1, 2, 4, 8, 16, 24},
			Curves: map[string]map[int]float64{},
		}
		constraints := map[string]mlfit.Options{
			"ols":          {Intercept: true},
			"ridge":        {Intercept: true, Ridge: 0.5},
			"non-negative": {Intercept: true, NonNegative: true},
			"no-intercept": {},
		}
		for name, opt := range constraints {
			curve, err := powermodel.ErrorCurve(ds, res.Inputs, opt)
			if err != nil {
				return nil, err
			}
			res.Curves[name] = curve
		}
		return res, nil
	})
}

// Table renders Fig. 11.
func (r *Fig11Result) Table() string {
	t := &table{header: []string{"inputs", "ols", "ridge", "non-negative", "no-intercept"}}
	for _, n := range r.Inputs {
		t.add(fmt.Sprintf("%d", n),
			f2(r.Curves["ols"][n]), f2(r.Curves["ridge"][n]),
			f2(r.Curves["non-negative"][n]), f2(r.Curves["no-intercept"][n]))
	}
	return t.String() + "active-power error (%); paper: falls with inputs, <2.5% at maximum inputs\n"
}

// Fig12Result is the top-down vs bottom-up model comparison.
type Fig12Result struct {
	powermodel.Comparison
	BottomUpEvents int
	Samples        int
}

// Fig12 fits both model styles on the same corpus and cross-validates.
func Fig12(o Options) (*Fig12Result, error) {
	cfg := uarch.POWER10()
	_, _, fp := modelInputs(cfg, o)
	return runner.CachedJSON(o.pool(), "fig12", fp, func() (*Fig12Result, error) {
		ds, err := modelDataset(cfg, o)
		if err != nil {
			return nil, err
		}
		td, err := powermodel.FitTopDown(ds, 16, mlfit.Options{Intercept: true})
		if err != nil {
			return nil, err
		}
		bu, err := powermodel.FitBottomUp(ds, 3, mlfit.Options{Intercept: true})
		if err != nil {
			return nil, err
		}
		return &Fig12Result{
			Comparison:     powermodel.Compare(td, bu, ds),
			BottomUpEvents: bu.EventsUsed,
			Samples:        len(ds.Samples),
		}, nil
	})
}

// Table renders Fig. 12.
func (r *Fig12Result) Table() string {
	t := &table{header: []string{"metric", "measured", "paper"}}
	t.add("mean |topdown - bottomup|", f2(r.MeanAbsDiffPct)+"%", "3.42%")
	t.add("model correlation", f3(r.Correlation), "~1 (correlation plot)")
	t.add("bottom-up events used", fmt.Sprintf("%d (39 components)", r.BottomUpEvents), "72 events / 39 components")
	t.add("traces evaluated", fmt.Sprintf("%d", r.Samples), "1480")
	return t.String()
}

// ---------------------------------------------------------------------------
// Proxy-workload extraction (Section III-A)
// ---------------------------------------------------------------------------

// ProxyStatsResult summarizes the Chopstix-style extraction.
type ProxyStatsResult struct {
	*proxy.SuiteResult
	MaxSnippet int
}

// ProxyStats extracts proxies from the whole suite.
func ProxyStats(o Options) (*ProxyStatsResult, error) {
	opt := proxy.DefaultOptions()
	if o.Quick {
		opt.ProfileBudget = 150_000
	}
	sr, err := proxy.ExtractSuite(workloads.SPECintSuite(), opt)
	if err != nil {
		return nil, err
	}
	res := &ProxyStatsResult{SuiteResult: sr}
	for _, pb := range sr.PerBenchmark {
		for _, p := range pb.Proxies {
			if p.Len() > res.MaxSnippet {
				res.MaxSnippet = p.Len()
			}
		}
	}
	return res, nil
}

// Table renders the proxy statistics.
func (r *ProxyStatsResult) Table() string {
	t := &table{header: []string{"benchmark", "proxies", "coverage"}}
	for _, pb := range r.PerBenchmark {
		t.add(pb.Source, fmt.Sprintf("%d", len(pb.Proxies)), pct(pb.Coverage))
	}
	t.add("TOTAL", fmt.Sprintf("%d", r.TotalProxies),
		fmt.Sprintf("%s (min %s, max %s)", pct(r.MeanCoverage), pct(r.MinCoverage), pct(r.MaxCoverage)))
	return t.String() +
		fmt.Sprintf("largest snippet %d instructions (paper: up to 22K; 1935 proxies; coverage 41-99%%, avg ~70%%)\n", r.MaxSnippet)
}

// ---------------------------------------------------------------------------
// APEX speedup (Section III-C)
// ---------------------------------------------------------------------------

// APEXResult is the accelerated-power-extraction study.
type APEXResult struct {
	Speedup        float64
	SignalsTracked int
	Extractions    int
	OnTheFlyPower  float64
	ReferencePower float64
	// Sampled flow, populated only under Options.Sample: the same
	// extraction run through apex.SampledExtract, where only the sampling
	// plan's representative windows are simulated. SampledSpeedup compounds
	// the platform and sampling speedups; SampledPowerErr is the
	// extrapolated average power against the full flow's cycle-weighted
	// mean.
	SampledSpeedup  float64
	SampledWindows  int
	SampledPowerErr float64
}

// APEXSpeedup measures the extraction speedup and cross-validates the fast
// path against the reference flow.
func APEXSpeedup(o Options) (*APEXResult, error) {
	w := workloads.Compress()
	run, err := apex.Extract(uarch.POWER10(),
		[]trace.Stream{trace.NewVMStream(w.Prog, o.scale(w.Budget))},
		5000, maxSimCycles, uarch.WithWarmup(o.scaleWarmup(w.Warmup)))
	if err != nil {
		return nil, err
	}
	r := &APEXResult{
		Speedup:        run.Speedup(),
		SignalsTracked: run.SignalsTracked,
		Extractions:    len(run.Extractions),
		OnTheFlyPower:  run.AveragePower(),
		ReferencePower: run.ReferencePower(),
	}
	if o.Sample != nil {
		srun, est, err := apex.SampledExtract(uarch.POWER10(), w.Prog, o.scale(w.Budget),
			o.scaleWarmup(w.Warmup), 1, 5000, maxSimCycles, *o.Sample)
		if err != nil {
			return nil, err
		}
		r.SampledSpeedup = srun.Speedup()
		r.SampledWindows = est.Meta.Windows
		r.SampledPowerErr = relErr(est.Meta.AvgPower, run.AveragePower())
	}
	return r, nil
}

// Table renders the APEX study.
func (r *APEXResult) Table() string {
	t := &table{header: []string{"metric", "measured", "paper"}}
	t.add("speedup vs software RTLSim", fmt.Sprintf("%.0fx", r.Speedup), "~5000x")
	t.add("signal groups instrumented", fmt.Sprintf("%d", r.SignalsTracked), "~8M signals (full RTL)")
	t.add("batch extractions", fmt.Sprintf("%d", r.Extractions), "configurable interval")
	t.add("on-the-fly power", f3(r.OnTheFlyPower), "identical accuracy")
	t.add("reference-flow power", f3(r.ReferencePower), "identical accuracy")
	if r.SampledWindows > 0 {
		t.add("sampled-APEX speedup", fmt.Sprintf("%.0fx", r.SampledSpeedup), "compounds w/ sampling")
		t.add("sampled windows", fmt.Sprintf("%d", r.SampledWindows), "-")
		t.add("sampled power err", pct(r.SampledPowerErr), "bounded by sampling CI")
	}
	return t.String()
}
