package experiments

import (
	"fmt"
	"strings"

	"power10sim/internal/microprobe"
	"power10sim/internal/runner"
	"power10sim/internal/serminer"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// serStudy builds a SERMiner study for one configuration over the Fig. 13
// workload set: microprobe sweeps plus SPEC proxies at each SMT level. The
// whole sweep is one runner batch; runs are added to the study in sweep
// order so the report tables stay byte-identical to the serial form. In
// tolerant mode (Options.Failures set) a failed point is dropped from the
// study and returned in failed, so the caller renders a tagged partial row
// instead of aborting the figure.
func serStudy(cfg *uarch.Config, o Options) (study *serminer.Study, failed []string, err error) {
	study = serminer.NewStudy(cfg)
	suite, err := microprobe.Fig13Suite()
	if err != nil {
		return nil, nil, err
	}
	specRep := workloads.Compress()
	specSMTs := []int{1, 2, 4}
	reqs := make([]runner.Request, 0, len(suite)+len(specSMTs))
	for _, tc := range suite {
		reqs = append(reqs, o.request(cfg, tc.Workload, tc.SMT))
	}
	for _, smt := range specSMTs {
		reqs = append(reqs, o.request(cfg, specRep, smt))
	}
	batch, err := runBatchTolerant(o, "serStudy["+cfg.Name+"]", reqs)
	if err != nil {
		return nil, nil, err
	}
	for i, tc := range suite {
		if batch[i].Err != nil {
			failed = append(failed, tc.Name)
			continue
		}
		study.AddRun(tc.Name, batch[i].Activity, tc.DataToggle)
	}
	// SPEC proxy entries per SMT level (st_spec, smt2_spec, smt4_spec).
	for i, smt := range specSMTs {
		name := "st_spec"
		if smt > 1 {
			name = fmt.Sprintf("smt%d_spec", smt)
		}
		if batch[len(suite)+i].Err != nil {
			failed = append(failed, name)
			continue
		}
		study.AddRun(name, batch[len(suite)+i].Activity, 0)
	}
	return study, failed, nil
}

// Fig13Result is the per-suite derating table.
type Fig13Result struct {
	Reports []serminer.Report
	VTs     []int
	// Failed lists points dropped in tolerant mode; Table renders them as
	// tagged partial rows.
	Failed []string
}

// Fig13 computes static and runtime derating per testcase suite.
func Fig13(o Options) (*Fig13Result, error) {
	study, failed, err := serStudy(uarch.POWER10(), o)
	if err != nil {
		return nil, err
	}
	vts := []int{10, 50, 90}
	return &Fig13Result{Reports: study.PerWorkload(vts), VTs: vts, Failed: failed}, nil
}

// Table renders Fig. 13.
func (r *Fig13Result) Table() string {
	t := &table{header: []string{"testcase", "static", "VT=10%", "VT=50%", "VT=90%"}}
	for _, rep := range r.Reports {
		t.add(rep.Name, pct(rep.StaticDerating),
			pct(rep.RuntimeDerating[10]), pct(rep.RuntimeDerating[50]), pct(rep.RuntimeDerating[90]))
	}
	for _, name := range r.Failed {
		t.add(name, "FAILED", "-", "-", "-")
	}
	return t.String() + "runtime derating columns; paper Fig. 13 spans ~20-90% across suites and VTs\n"
}

// Fig14Result compares derating between the generations.
type Fig14Result struct {
	VTs []int
	P9  serminer.Report
	P10 serminer.Report
	// Failed lists points dropped in tolerant mode; the aggregate is then
	// computed over the surviving runs and the table carries a notice.
	Failed []string
}

// Fig14 evaluates both cores against the POWER9-referenced thresholds.
func Fig14(o Options) (*Fig14Result, error) {
	s9, failed9, err := serStudy(uarch.POWER9(), o)
	if err != nil {
		return nil, err
	}
	s10, failed10, err := serStudy(uarch.POWER10(), o)
	if err != nil {
		return nil, err
	}
	failed := append(failed9, failed10...)
	vts := []int{10, 30, 50, 70, 90}
	thr := s9.Thresholds(vts)
	a9, err := s9.Aggregate(vts, thr)
	if err != nil {
		return nil, err
	}
	a10, err := s10.Aggregate(vts, thr)
	if err != nil {
		return nil, err
	}
	return &Fig14Result{VTs: vts, P9: a9, P10: a10, Failed: failed}, nil
}

// Table renders Fig. 14.
func (r *Fig14Result) Table() string {
	t := &table{header: []string{"VT", "P9 runtime derating", "P10 runtime derating", "gap"}}
	for _, vt := range r.VTs {
		d9, d10 := r.P9.RuntimeDerating[vt], r.P10.RuntimeDerating[vt]
		t.add(fmt.Sprintf("%d%%", vt), pct(d9), pct(d10), pct(d10-d9))
	}
	t.add("static", pct(r.P9.StaticDerating), pct(r.P10.StaticDerating),
		pct(r.P10.StaticDerating-r.P9.StaticDerating))
	s := t.String() + "paper: P10 runtime derating higher (gap 6% at VT=10% to 21% at VT=90%); static ~10% lower\n"
	if len(r.Failed) > 0 {
		s += fmt.Sprintf("PARTIAL: %d point(s) failed and were excluded: %s\n",
			len(r.Failed), strings.Join(r.Failed, ", "))
	}
	return s
}
