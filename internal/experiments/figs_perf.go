package experiments

import (
	"fmt"
	"strings"

	"power10sim/internal/runner"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// ---------------------------------------------------------------------------
// Headline (Section II-B / Table I bottom rows)
// ---------------------------------------------------------------------------

// HeadlineResult is the 2.6x story: SPECint throughput, power and perf/W of
// POWER10 relative to POWER9 at iso-V/F, plus the flush-reduction claims.
type HeadlineResult struct {
	SpeedupST            float64
	SpeedupSMT8          float64
	PowerRatio           float64               // P10/P9 core power, suite geomean
	PerfPerWatt          float64               // SpeedupSMT8 / PowerRatio
	P9SuitePower         float64               // normalization check (~1.0)
	FlushReduction       float64               // 1 - P10 flushed-per-inst / P9 (suite avg)
	InterpFlushReduction float64               // same for the interpreted-language class
	PerWorkload          map[string][2]float64 // name -> {ST speedup, power ratio}
}

// Headline runs the SPECint-like suite on both generations. All four runs
// per workload (P9/P10 x ST/SMT8) are independent, so the whole suite is
// submitted as one batch to the simulation runner.
func Headline(o Options) (*HeadlineResult, error) {
	suite := workloads.SPECintSuite()
	p9, p10 := uarch.POWER9(), uarch.POWER10()
	reqs := make([]runner.Request, 0, 4*len(suite))
	for _, w := range suite {
		reqs = append(reqs,
			o.request(p9, w, 1), o.request(p10, w, 1),
			o.request(p9, w, 8), o.request(p10, w, 8))
	}
	runs, err := runBatch(o, reqs)
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{PerWorkload: map[string][2]float64{}}
	var spST, spSMT8, pw []float64
	var p9Power float64
	var flush9, flush10, inst9, inst10 float64
	for wi, w := range suite {
		a9, r9 := runs[4*wi].Activity, runs[4*wi].Report
		a10, r10 := runs[4*wi+1].Activity, runs[4*wi+1].Report
		sp := a10.IPC() / a9.IPC()
		pr := r10.Total / r9.Total
		spST = append(spST, sp)
		pw = append(pw, pr)
		p9Power += r9.Total
		res.PerWorkload[w.Name] = [2]float64{sp, pr}
		flush9 += float64(a9.FlushedInsts)
		flush10 += float64(a10.FlushedInsts)
		inst9 += float64(a9.Instructions)
		inst10 += float64(a10.Instructions)
		if w.Name == "interp" {
			f9 := float64(a9.FlushedInsts) / float64(a9.Instructions)
			f10 := float64(a10.FlushedInsts) / float64(a10.Instructions)
			res.InterpFlushReduction = 1 - f10/f9
		}
		// SMT8 throughput (quick subset: SMT8 on every workload).
		a9s, a10s := runs[4*wi+2].Activity, runs[4*wi+3].Activity
		spSMT8 = append(spSMT8, a10s.IPC()/a9s.IPC())
	}
	res.SpeedupST = geomean(spST)
	res.SpeedupSMT8 = geomean(spSMT8)
	res.PowerRatio = geomean(pw)
	res.PerfPerWatt = res.SpeedupSMT8 / res.PowerRatio
	res.P9SuitePower = p9Power / float64(len(suite))
	res.FlushReduction = 1 - (flush10/inst10)/(flush9/inst9)
	return res, nil
}

// Table renders the headline result.
func (h *HeadlineResult) Table() string {
	t := &table{header: []string{"metric", "measured", "paper"}}
	t.add("SPECint speedup (ST geomean)", f3(h.SpeedupST), "~1.3x")
	t.add("SPECint speedup (SMT8 geomean)", f3(h.SpeedupSMT8), "~1.3x")
	t.add("core power ratio P10/P9", f3(h.PowerRatio), "~0.5x")
	t.add("core perf/W gain", f2(h.PerfPerWatt), "2.6x")
	t.add("P9 suite power (normalization)", f3(h.P9SuitePower), "1.0")
	t.add("flushed-instruction reduction", pct(h.FlushReduction), "25%")
	t.add("  interpreted-language class", pct(h.InterpFlushReduction), "38%")
	return t.String()
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

// TableIResult reproduces the chip features and efficiency projections.
type TableIResult struct {
	Headline *HeadlineResult
	// SocketEfficiency is the dual-chip-socket energy-efficiency estimate:
	// core perf/W x socket-level scaling headroom (more cores at lower
	// per-core V/F), capped per the paper at ~3x.
	SocketEfficiency float64
}

// TableI computes the features/efficiency table.
func TableI(o Options) (*TableIResult, error) {
	h, err := Headline(o)
	if err != nil {
		return nil, err
	}
	// Socket level: 2.5x cores per socket at a slightly lower V/F point
	// turns the 2.6x core perf/W into "up to 3x" socket efficiency.
	socket := h.PerfPerWatt * 1.15
	if socket > 3.2 {
		socket = 3.2
	}
	return &TableIResult{Headline: h, SocketEfficiency: socket}, nil
}

// Table renders Table I.
func (r *TableIResult) Table() string {
	cfg := uarch.POWER10()
	t := &table{header: []string{"chip attribute", "value"}}
	t.add("Functional cores", "15")
	t.add("SMT per core", fmt.Sprintf("%d-way", cfg.SMTMax))
	t.add("L2 cache per core", fmt.Sprintf("%dMB", cfg.L2.SizeBytes>>20))
	t.add("L3 cache (chip)", "up to 120MB")
	t.add("MMU resources", fmt.Sprintf("%dx relative to POWER9", cfg.TLBEntries/uarch.POWER9().TLBEntries))
	t.add("Open Memory Interface", "16 x8 @ up to 1 TB/s")
	t.add("PowerAXON Interface", "16 x8 @ up to 1 TB/s")
	t.add("Energy efficiency (socket)", fmt.Sprintf("up to %.1fx relative to POWER9 (measured %.2fx)", 3.0, r.SocketEfficiency))
	t.add("Performance/watt (core)", fmt.Sprintf("%.2fx relative to POWER9 (paper 2.6x)", r.Headline.PerfPerWatt))
	return t.String()
}

// ---------------------------------------------------------------------------
// Fig. 4: per-unit design-change performance contributions
// ---------------------------------------------------------------------------

// Fig4Result holds the incremental gain of each design-change group.
type Fig4Result struct {
	// GainST / GainSMT8: per-ablation suite-geomean incremental speedup
	// (e.g. 0.04 = +4%), in ladder order.
	GainST   []float64
	GainSMT8 []float64
	// MaxGain is the largest single-workload gain per group ("stars").
	MaxGain []float64
	Names   []string
}

// Fig4 applies the POWER9->POWER10 design changes cumulatively and measures
// each group's contribution on the SPECint-like suite in ST and SMT8 modes.
func Fig4(o Options) (*Fig4Result, error) {
	ladder := uarch.AblationLadder()
	suite := workloads.SPECintSuite()
	// The whole (ladder x suite x {ST, SMT8}) sweep is embarrassingly
	// parallel: submit it as one batch and index results in sweep order.
	reqs := make([]runner.Request, 0, 2*len(ladder)*len(suite))
	for _, cfg := range ladder {
		for _, w := range suite {
			reqs = append(reqs, o.request(cfg, w, 1), o.request(cfg, w, 8))
		}
	}
	runs, err := runBatch(o, reqs)
	if err != nil {
		return nil, err
	}
	type perf struct{ st, smt8 []float64 }
	ipcs := make([]perf, len(ladder))
	for li := range ladder {
		for wi := range suite {
			base := 2 * (li*len(suite) + wi)
			ipcs[li].st = append(ipcs[li].st, runs[base].Activity.IPC())
			ipcs[li].smt8 = append(ipcs[li].smt8, runs[base+1].Activity.IPC())
		}
	}
	res := &Fig4Result{}
	for a := 0; a < int(uarch.NumAblations); a++ {
		res.Names = append(res.Names, uarch.Ablation(a).String())
		var rST, rS8, maxG []float64
		for wi := range suite {
			rST = append(rST, ipcs[a+1].st[wi]/ipcs[a].st[wi])
			rS8 = append(rS8, ipcs[a+1].smt8[wi]/ipcs[a].smt8[wi])
			maxG = append(maxG, ipcs[a+1].st[wi]/ipcs[a].st[wi])
		}
		res.GainST = append(res.GainST, geomean(rST)-1)
		res.GainSMT8 = append(res.GainSMT8, geomean(rS8)-1)
		best := 0.0
		for _, g := range maxG {
			if g-1 > best {
				best = g - 1
			}
		}
		res.MaxGain = append(res.MaxGain, best)
	}
	return res, nil
}

// Table renders Fig. 4.
func (r *Fig4Result) Table() string {
	t := &table{header: []string{"design change", "ST gain", "SMT8 gain", "max workload gain"}}
	for i, n := range r.Names {
		t.add(n, pct(r.GainST[i]), pct(r.GainSMT8[i]), pct(r.MaxGain[i]))
	}
	var sumST, sumS8 float64
	for i := range r.Names {
		sumST += r.GainST[i]
		sumS8 += r.GainSMT8[i]
	}
	t.add("(sum of groups)", pct(sumST), pct(sumS8), "")
	s := t.String()
	return s + "paper (SMT8 SPECint avg): branch ~4%, latency+BW ~10%, L2 ~9%, decode+2xVSX ~5%, queues ~4%\n"
}

// normalizeName keeps table labels stable.
var _ = strings.TrimSpace
