package experiments

import (
	"fmt"

	"power10sim/internal/runner"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

// ---------------------------------------------------------------------------
// Fig. 5: DGEMM on VSU vs MMA
// ---------------------------------------------------------------------------

// Fig5Row is one bar pair of Fig. 5, normalized to POWER9 VSU.
type Fig5Row struct {
	Name          string
	FlopsPerCycle float64
	Power         float64
	RelFlops      float64 // vs P9 VSU
	RelPower      float64
	PeakFraction  float64
}

// Fig5Result is the DGEMM kernel study.
type Fig5Result struct {
	Rows []Fig5Row
}

// fig5GEMM is the kernel size used for the study (K large enough that the
// B panel streams beyond the L1).
var fig5GEMM = workloads.GEMMSize{M: 16, N: 64, K: 256}

// Fig5 measures the OpenBLAS-representative DGEMM kernel: the same VSU
// coding on POWER9 and POWER10, and the MMA coding on POWER10, in warm
// 5K-cycle-window fashion (the kernels' second pass is the measurement
// region). Peaks: 8 / 16 / 32 DP flops per cycle.
func Fig5(o Options) (*Fig5Result, error) {
	vsu, _, err := workloads.DGEMMVSU(fig5GEMM)
	if err != nil {
		return nil, err
	}
	mma, _, err := workloads.DGEMMMMA(fig5GEMM)
	if err != nil {
		return nil, err
	}
	type cfgRun struct {
		name string
		cfg  *uarch.Config
		w    *workloads.Workload
		peak float64
	}
	runs := []cfgRun{
		{"P9 VSU", uarch.POWER9(), vsu, 8},
		{"P10 VSU", uarch.POWER10(), vsu, 16},
		{"P10 MMA", uarch.POWER10(), mma, 32},
	}
	reqs := make([]runner.Request, len(runs))
	for i, cr := range runs {
		reqs[i] = o.request(cr.cfg, cr.w, 1)
	}
	batch, err := runBatch(o, reqs)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	var base Fig5Row
	for i, cr := range runs {
		a, rep := batch[i].Activity, batch[i].Report
		row := Fig5Row{
			Name:          cr.name,
			FlopsPerCycle: a.FlopsPerCycle(),
			Power:         rep.Total,
			PeakFraction:  a.FlopsPerCycle() / cr.peak,
		}
		if i == 0 {
			base = row
		}
		row.RelFlops = row.FlopsPerCycle / base.FlopsPerCycle
		row.RelPower = row.Power / base.Power
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders Fig. 5.
func (r *Fig5Result) Table() string {
	t := &table{header: []string{"code", "flops/cyc", "of peak", "rel flops", "rel power"}}
	for _, row := range r.Rows {
		t.add(row.Name, f2(row.FlopsPerCycle), pct(row.PeakFraction), f2(row.RelFlops), f2(row.RelPower))
	}
	return t.String() +
		"paper: P10 VSU 1.95x flops at 0.678x power (9.94 f/c, 62.1% of peak);\n" +
		"       P10 MMA 5.47x flops at 0.759x power (27.9 f/c, 87.1% of peak); P9 VSU ~64% of peak\n"
}

// ---------------------------------------------------------------------------
// Fig. 6: end-to-end AI inference
// ---------------------------------------------------------------------------

// Fig6Row is one configuration's panel values, normalized to the POWER9
// baseline run of the same model.
type Fig6Row struct {
	Config        string
	GEMMInstRatio float64 // relative GEMM-class instruction fraction
	TotalInsts    float64 // relative dynamic instruction count
	CPI           float64 // relative CPI
	Cycles        float64 // relative total cycles
	Speedup       float64 // total speedup vs POWER9
}

// Fig6Model is one model's three-configuration comparison.
type Fig6Model struct {
	Model string
	Rows  []Fig6Row
}

// Fig6Result holds both models plus the socket projections.
type Fig6Result struct {
	Models []Fig6Model
	// SocketFP32 is the socket-level speedup estimate: core speedup x
	// 2.5x core count x 1.1x bandwidth/software.
	SocketFP32 map[string]float64
	// SocketINT8 extends FP32 with the INT8 MMA throughput advantage.
	SocketINT8 map[string]float64
	// INT8Advantage is the measured xvi8ger4 vs xvf32ger ops/cycle ratio.
	INT8Advantage float64
}

// Fig6 runs ResNet-50 and BERT-Large models on POWER9, POWER10 without MMA
// (VSU coding) and POWER10 with MMA.
func Fig6(o Options) (*Fig6Result, error) {
	res := &Fig6Result{SocketFP32: map[string]float64{}, SocketINT8: map[string]float64{}}
	type build struct {
		model string
		mk    func(bool) (*workloads.Workload, error)
	}
	for _, b := range []build{{"ResNet-50", workloads.ResNet50}, {"BERT-Large", workloads.BERTLarge}} {
		vsu, err := b.mk(false)
		if err != nil {
			return nil, err
		}
		mma, err := b.mk(true)
		if err != nil {
			return nil, err
		}
		type rr struct {
			name string
			cfg  *uarch.Config
			w    *workloads.Workload
		}
		runs := []rr{
			{"POWER9 (baseline)", uarch.POWER9(), vsu},
			{"POWER10 (w/o MMA)", uarch.POWER10NoMMA(), vsu},
			{"POWER10 (w/ MMA)", uarch.POWER10(), mma},
		}
		reqs := make([]runner.Request, len(runs))
		for i, run := range runs {
			reqs[i] = o.request(run.cfg, run.w, 1)
		}
		batch, err := runBatch(o, reqs)
		if err != nil {
			return nil, err
		}
		fm := Fig6Model{Model: b.model}
		var baseCycles, baseInsts, baseCPI, baseGEMM float64
		for i, run := range runs {
			a := batch[i].Activity
			recs, err := trace.Capture(run.w.Prog, o.scale(run.w.Budget))
			if err != nil {
				return nil, err
			}
			st := trace.Summarize(run.w.Prog, recs)
			gemm := st.GEMMRatio()
			cycles := float64(a.Cycles)
			insts := float64(a.Instructions)
			cpi := a.CPI()
			if i == 0 {
				baseCycles, baseInsts, baseCPI, baseGEMM = cycles, insts, cpi, gemm
			}
			fm.Rows = append(fm.Rows, Fig6Row{
				Config:        run.name,
				GEMMInstRatio: gemm / baseGEMM,
				TotalInsts:    insts / baseInsts,
				CPI:           cpi / baseCPI,
				Cycles:        cycles / baseCycles,
				Speedup:       baseCycles / cycles,
			})
		}
		res.Models = append(res.Models, fm)
		core := fm.Rows[2].Speedup
		socket := core * 2.5 * 1.1
		res.SocketFP32[b.model] = socket
	}
	// INT8: measure the int8 vs fp32 MMA throughput on the GEMM kernels.
	i8, err := workloads.GEMMInt8MMA(workloads.GEMMSize{M: 32, N: 64, K: 64})
	if err != nil {
		return nil, err
	}
	f32, _, err := workloads.SGEMMMMA(workloads.GEMMSize{M: 32, N: 64, K: 64})
	if err != nil {
		return nil, err
	}
	p10 := uarch.POWER10()
	i8f32, err := runBatch(o, []runner.Request{o.request(p10, i8, 1), o.request(p10, f32, 1)})
	if err != nil {
		return nil, err
	}
	aI8, aF32 := i8f32[0].Activity, i8f32[1].Activity
	// Ops per cycle: INT8 MACs vs FP32 MACs (flops/2).
	int8Ops := float64(aI8.IntMACs) / float64(aI8.Cycles)
	fp32Ops := float64(aF32.Flops) / 2 / float64(aF32.Cycles)
	res.INT8Advantage = int8Ops / fp32Ops
	// The kernel-level INT8 advantage only applies to the GEMM share of the
	// end-to-end run (Amdahl): the non-GEMM phases are precision-agnostic.
	for mi, m := range res.Models {
		mmaW, err := []func(bool) (*workloads.Workload, error){workloads.ResNet50, workloads.BERTLarge}[mi](true)
		if err != nil {
			return nil, err
		}
		recs, err := trace.Capture(mmaW.Prog, o.scale(mmaW.Budget))
		if err != nil {
			return nil, err
		}
		st := trace.Summarize(mmaW.Prog, recs)
		g := st.GEMMRatio()
		core := 1 / ((1 - g) + g/res.INT8Advantage)
		res.SocketINT8[m.Model] = res.SocketFP32[m.Model] * core
	}
	return res, nil
}

// Table renders Fig. 6.
func (r *Fig6Result) Table() string {
	var out string
	for _, m := range r.Models {
		t := &table{header: []string{m.Model, "GEMM ratio", "total insts", "CPI", "cycles", "speedup"}}
		for _, row := range m.Rows {
			t.add(row.Config, f2(row.GEMMInstRatio), f2(row.TotalInsts), f2(row.CPI), f2(row.Cycles), f2(row.Speedup))
		}
		out += t.String() + "\n"
	}
	out += fmt.Sprintf("socket FP32 estimates: ResNet-50 %.1fx, BERT-Large %.1fx (paper: up to 10x)\n",
		r.SocketFP32["ResNet-50"], r.SocketFP32["BERT-Large"])
	out += fmt.Sprintf("socket INT8 estimates: ResNet-50 %.1fx, BERT-Large %.1fx (paper: up to 21x; int8/fp32 advantage %.2fx)\n",
		r.SocketINT8["ResNet-50"], r.SocketINT8["BERT-Large"], r.INT8Advantage)
	out += "paper core speedups: ResNet-50 2.25x (no MMA) / 3.55x (MMA); BERT-Large 2.08x / 3.64x\n"
	return out
}
