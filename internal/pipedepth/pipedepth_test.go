package pipedepth

import "testing"

func TestOptimalDepthStableAt27(t *testing.T) {
	// Fig. 2: the optimum holds at 27 FO4 for the throughput metric across
	// the power targets of interest (0.5x-1.0x of baseline).
	p := DefaultParams()
	for _, tgt := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		op := p.Optimal(tgt, DefaultFO4Range())
		if op.FO4 != 27 {
			t.Errorf("power target %.1f: optimal FO4 %d, want 27", tgt, op.FO4)
		}
	}
}

func TestLowerPowerTargetsFavorShallowerPipelines(t *testing.T) {
	// Fig. 2 discussion: higher FO4 points are optimal for lower core
	// power targets (not of product interest, but the trend must hold).
	p := DefaultParams()
	low := p.Optimal(0.3, DefaultFO4Range())
	high := p.Optimal(1.0, DefaultFO4Range())
	if low.FO4 <= high.FO4 {
		t.Errorf("0.3x target optimum FO4 %d not shallower than 1.0x optimum %d", low.FO4, high.FO4)
	}
}

func TestPerformanceMonotoneInPowerTarget(t *testing.T) {
	p := DefaultParams()
	prev := 0.0
	for _, tgt := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
		op := p.Optimal(tgt, DefaultFO4Range())
		if op.BIPS < prev {
			t.Errorf("BIPS fell to %.3f at target %.1f", op.BIPS, tgt)
		}
		prev = op.BIPS
	}
}

func TestEnvelopeRespected(t *testing.T) {
	p := DefaultParams()
	for _, tgt := range []float64{0.4, 0.6, 0.8, 1.0} {
		for _, op := range p.Sweep(tgt, DefaultFO4Range()) {
			if op.Power > tgt*1.02 {
				t.Errorf("FO4 %d at target %.1f: power %.3f exceeds envelope", op.FO4, tgt, op.Power)
			}
			if op.FreqScale <= 0 || op.FreqScale > 1 {
				t.Errorf("FO4 %d: frequency scale %v out of (0,1]", op.FO4, op.FreqScale)
			}
		}
	}
}

func TestDeepPipelinesClampedHarder(t *testing.T) {
	// Deeper pipelines (lower FO4) have more latches and higher frequency:
	// the envelope must clamp them more aggressively.
	p := DefaultParams()
	deep := p.Evaluate(12, 0.7)
	shallow := p.Evaluate(39, 0.7)
	if deep.FreqScale >= shallow.FreqScale {
		t.Errorf("deep pipe scale %.2f >= shallow %.2f", deep.FreqScale, shallow.FreqScale)
	}
}

func TestBaselineNormalization(t *testing.T) {
	p := DefaultParams()
	op := p.Evaluate(27, 1.0)
	if op.BIPS < 0.99 || op.BIPS > 1.01 {
		t.Errorf("baseline BIPS %.3f, want ~1.0", op.BIPS)
	}
	if op.FreqScale < 0.99 {
		t.Errorf("baseline design clamped (scale %.2f) at its own power budget", op.FreqScale)
	}
}

func TestCPIGrowsWithDepth(t *testing.T) {
	p := DefaultParams()
	if p.cpi(12) <= p.cpi(27) {
		t.Error("deeper pipeline did not increase CPI")
	}
	if p.stages(12) <= p.stages(27) {
		t.Error("lower FO4 did not increase stage count")
	}
}
