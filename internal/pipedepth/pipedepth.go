// Package pipedepth implements the optimal pipeline-depth analysis of
// Section II-A / Fig. 2, following the power-performance pipeline
// optimization formulation of Srinivasan et al. [42] and Zyuban [52] that
// the paper applied to the mature POWER9 models.
//
// The model sweeps logic depth per stage (FO4), deriving frequency, CPI
// degradation from hazards that scale with pipeline length, and power from
// the Einspower-style component decomposition (latch-clock, logic
// data-switching, array, register file, leakage), each scaled by its own
// function of depth. When a candidate design exceeds the core power
// envelope, voltage and frequency are reduced until it fits (the
// "power-limited frequency" of the figure), and performance is evaluated at
// that operating point.
package pipedepth

import "math"

// Params anchors the analytical model. Defaults are derived from the
// simulated POWER9 baseline (see DefaultParams).
type Params struct {
	// TotalLogicFO4 is the machine's total logic depth in FO4.
	TotalLogicFO4 float64
	// LatchOverheadFO4 is the per-stage latch/clock-skew overhead.
	LatchOverheadFO4 float64
	// BaselineFO4 is the reference design point (27 for POWER9/POWER10).
	BaselineFO4 float64

	// BaseCPI is the depth-independent CPI component at the baseline.
	BaseCPI float64
	// HazardCPIPerStage is the CPI added per pipeline stage (branch
	// resolution, dependency bubbles, flush refill).
	HazardCPIPerStage float64

	// Power shares at the baseline operating point (sum to 1).
	LatchShare, LogicShare, ArrayShare, LeakShare float64
	// LatchGrowthExp scales latch count with pipeline length (partitioning
	// a fixed logic cloud into more stages adds staging latches).
	LatchGrowthExp float64
}

// DefaultParams returns the study's anchor values: a 16-stage, 27-FO4
// baseline with the component shares the Einspower-analog reports for the
// POWER9 configuration on the SPECint-like suite.
func DefaultParams() Params {
	return Params{
		TotalLogicFO4:     (27 - 3) * 16,
		LatchOverheadFO4:  3,
		BaselineFO4:       27,
		BaseCPI:           0.72,
		HazardCPIPerStage: 0.026,
		LatchShare:        0.48,
		LogicShare:        0.26,
		ArrayShare:        0.16,
		LeakShare:         0.10,
		LatchGrowthExp:    1.4,
	}
}

// stages returns the pipeline length at a given FO4 per stage.
func (p Params) stages(fo4 float64) float64 {
	logic := fo4 - p.LatchOverheadFO4
	if logic < 1 {
		logic = 1
	}
	return p.TotalLogicFO4 / logic
}

// cpi returns cycles per instruction at a given depth.
func (p Params) cpi(fo4 float64) float64 {
	return p.BaseCPI + p.HazardCPIPerStage*p.stages(fo4)
}

// relFreq returns frequency relative to the baseline FO4 point.
func (p Params) relFreq(fo4 float64) float64 { return p.BaselineFO4 / fo4 }

// relPower returns power relative to the baseline operating point, at
// nominal voltage, for the given depth and relative frequency.
func (p Params) relPower(fo4, f float64) float64 {
	sr := p.stages(fo4) / p.stages(p.BaselineFO4)
	dyn := p.LatchShare*math.Pow(sr, p.LatchGrowthExp)*f +
		p.LogicShare*f +
		p.ArrayShare*f
	leak := p.LeakShare * math.Pow(sr, 0.6)
	return dyn + leak
}

// OperatingPoint is one evaluated design.
type OperatingPoint struct {
	FO4 int
	// FreqScale is the voltage/frequency derate applied to fit the power
	// envelope (1 = unconstrained).
	FreqScale float64
	// Power is the resulting power relative to baseline.
	Power float64
	// BIPS is throughput performance normalized to the baseline design at
	// the 1.0x power target.
	BIPS float64
}

// fitEnvelope finds the voltage/frequency scale s in (0, 1] such that power
// meets the target: dynamic scales ~ s^3 (V tracks f), leakage ~ s.
func (p Params) fitEnvelope(fo4, target float64) float64 {
	f := p.relFreq(fo4)
	sr := p.stages(fo4) / p.stages(p.BaselineFO4)
	dyn := p.LatchShare*math.Pow(sr, p.LatchGrowthExp)*f + p.LogicShare*f + p.ArrayShare*f
	leak := p.LeakShare * math.Pow(sr, 0.6)
	if dyn+leak <= target {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		s := (lo + hi) / 2
		if dyn*s*s*s+leak*s > target {
			hi = s
		} else {
			lo = s
		}
	}
	return (lo + hi) / 2
}

// Evaluate computes the operating point of one FO4 design under a power
// target expressed as a fraction of the baseline power.
func (p Params) Evaluate(fo4 int, powerTarget float64) OperatingPoint {
	s := p.fitEnvelope(float64(fo4), powerTarget)
	f := p.relFreq(float64(fo4)) * s
	// CPI hazards scale mildly with the derate: slower clocks hide a bit
	// of the fixed-time memory latency.
	bips := f / p.cpi(float64(fo4))
	// Normalize against the baseline design at full power.
	base := p.relFreq(p.BaselineFO4) / p.cpi(p.BaselineFO4)
	return OperatingPoint{
		FO4:       fo4,
		FreqScale: s,
		Power:     p.relPower(float64(fo4), p.relFreq(float64(fo4))*s) * s * s,
		BIPS:      bips / base,
	}
}

// Sweep evaluates a range of FO4 designs at one power target.
func (p Params) Sweep(powerTarget float64, fo4s []int) []OperatingPoint {
	out := make([]OperatingPoint, 0, len(fo4s))
	for _, d := range fo4s {
		out = append(out, p.Evaluate(d, powerTarget))
	}
	return out
}

// Optimal returns the FO4 with the highest BIPS at the target.
func (p Params) Optimal(powerTarget float64, fo4s []int) OperatingPoint {
	best := p.Evaluate(fo4s[0], powerTarget)
	for _, d := range fo4s[1:] {
		if op := p.Evaluate(d, powerTarget); op.BIPS > best.BIPS {
			best = op
		}
	}
	return best
}

// DefaultFO4Range is the swept depth range of Fig. 2.
func DefaultFO4Range() []int {
	var out []int
	for d := 12; d <= 54; d += 3 {
		out = append(out, d)
	}
	return out
}
