// Package power10sim reproduces "Energy Efficiency Boost in the AI-Infused
// POWER10 Processor" (ISCA 2021) as a from-scratch simulation ecosystem:
// a cycle-level POWER9/POWER10 core model, a latch-activity RTL abstraction
// with an Einspower-style power model, the APEX accelerated power extractor,
// Chopstix-style proxy workloads, the Tracepoints trace methodology,
// counter-based power models, SERMiner derating analysis, and the WOF /
// throttling / power-proxy management stack.
//
// The public surface is the command-line tools under cmd/ and the runnable
// examples under examples/; the library packages live under internal/ and
// are exercised end to end by the benchmark harness in bench_test.go, which
// regenerates every table and figure of the paper's evaluation. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package power10sim
