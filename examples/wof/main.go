// WOF: exercise the core power-management stack — characterize the power
// envelope with the stressmark, compute deterministic Workload Optimized
// Frequency boosts for a set of workloads, design the 16-counter power
// proxy, and demonstrate the Digital Droop Sensor on an abrupt load step.
package main

import (
	"fmt"
	"log"

	"power10sim/internal/pmgmt"
	"power10sim/internal/power"
	"power10sim/internal/powermodel"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

func report(cfg *uarch.Config, w *workloads.Workload) *power.Report {
	res, err := uarch.Simulate(cfg, []trace.Stream{trace.NewVMStream(w.Prog, w.Budget)},
		50_000_000, uarch.WithWarmup(w.Warmup))
	if err != nil {
		log.Fatal(err)
	}
	return power.NewModel(cfg).Report(&res.Activity)
}

func main() {
	cfg := uarch.POWER10()

	// 1. Workload Optimized Frequency.
	wof := pmgmt.NewWOF(report(cfg, workloads.Stressmark(true)))
	fmt.Println("Workload Optimized Frequency boosts (deterministic):")
	for _, w := range []*workloads.Workload{
		workloads.Stressmark(true), workloads.IntCompute(), workloads.Compress(),
		workloads.GraphOpt(), workloads.ActiveIdle(),
	} {
		rep := report(cfg, w)
		fmt.Printf("  %-14s effcap ratio %.2f -> %.3fx frequency\n",
			w.Name, wof.EffCapRatio(rep), wof.Boost(rep))
	}

	// 2. The hardware power proxy that feeds the management loops.
	ds, err := powermodel.Collect(cfg, []*workloads.Workload{
		workloads.IntCompute(), workloads.Compress(), workloads.MediaVec(),
		workloads.Stressmark(true),
	}, 2500)
	if err != nil {
		log.Fatal(err)
	}
	px, err := pmgmt.DesignProxy(ds, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n16-counter power proxy: %.1f%% active-power error\ncounters: %v\n",
		px.ActiveError, px.Counters)

	// 3. Digital Droop Sensor on an idle->stressmark current step.
	stress := workloads.Stressmark(true)
	series, err := pmgmt.CurrentSeries(cfg, func() trace.Stream {
		return trace.NewVMStream(stress.Prog, stress.Budget)
	}, 200, 50_000_000)
	if err != nil {
		log.Fatal(err)
	}
	// Normalize to the droop model's design scale and prepend a quiet phase.
	var peak float64
	for _, v := range series {
		if v > peak {
			peak = v
		}
	}
	for i := range series {
		series[i] *= 2.5 / peak
	}
	quiet := make([]float64, 30)
	for i := range quiet {
		quiet[i] = 0.2
	}
	series = append(quiet, series...)
	dds := pmgmt.DefaultDDS()
	off := dds.SimulateDroop(series, false)
	on := dds.SimulateDroop(series, true)
	fmt.Printf("\nDigital Droop Sensor on a load step:\n")
	fmt.Printf("  sensor off: min margin %.3f, %d violations\n", off.MinMargin, off.Violations)
	fmt.Printf("  sensor on:  min margin %.3f, %d violations, %d firings, %d throttled slots\n",
		on.MinMargin, on.Violations, on.SensorFirings, on.ThrottledSlots)
}
