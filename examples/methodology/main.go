// Methodology: walk the paper's pre-silicon flow end to end on one
// benchmark — profile it, extract Chopstix-style proxies, replay a proxy on
// the timing model, cross-check APEX's fast power path against the detailed
// flow, and fit a counter power model from epoch samples. This is Figs. 7-9
// as a program.
package main

import (
	"fmt"
	"log"

	"power10sim/internal/apex"
	"power10sim/internal/mlfit"
	"power10sim/internal/powermodel"
	"power10sim/internal/proxy"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

func main() {
	cfg := uarch.POWER10()
	w := workloads.Compress()

	// 1. Chopstix: extract hot-region proxies from the functional profile.
	pres, err := proxy.Extract(w, proxy.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. proxies: %d snippets covering %.1f%% of %q\n",
		len(pres.Proxies), pres.Coverage*100, w.Name)

	// 2. Replay a proxy as an L1-contained endless loop on the core model.
	p := pres.Proxies[0]
	rep, err := uarch.Simulate(cfg, []trace.Stream{p.Stream(40_000)}, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. proxy %s replay: IPC %.3f over %d instructions\n",
		p.Name, rep.IPC(), rep.Activity.Instructions)

	// 3. APEX: batch-extract LFSR switching counters; the on-the-fly power
	//    must match the detailed reference flow exactly.
	run, err := apex.Extract(cfg, []trace.Stream{trace.NewVMStream(w.Prog, w.Budget)},
		5000, 50_000_000, uarch.WithWarmup(w.Warmup))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. APEX: %d extractions, %.0fx speedup, fast %.4f == reference %.4f\n",
		len(run.Extractions), run.Speedup(), run.AveragePower(), run.ReferencePower())

	// 4. M1-linked counter power model from epoch samples.
	ds, err := powermodel.Collect(cfg, []*workloads.Workload{
		workloads.Compress(), workloads.IntCompute(), workloads.MediaVec(),
	}, 2500)
	if err != nil {
		log.Fatal(err)
	}
	td, err := powermodel.FitTopDown(ds, 8, mlfit.Options{Intercept: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. counter power model: %d inputs, %.2f%% active-power error over %d samples\n",
		td.Inputs, td.TrainError, len(ds.Samples))
	fmt.Println("\nflow complete: workload -> proxies -> timing replay -> APEX power -> counter model")
}
