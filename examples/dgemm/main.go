// DGEMM: reproduce the Fig. 5 kernel study interactively — the same
// OpenBLAS-style vector (VSU) DGEMM on POWER9 and POWER10, and the
// MMA outer-product coding on POWER10, reporting flops/cycle and power.
// The kernels compute real matrix products; results are verified against a
// reference multiply before timing.
package main

import (
	"fmt"
	"log"
	"math"

	"power10sim/internal/isa"
	"power10sim/internal/power"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

func main() {
	size := workloads.GEMMSize{M: 16, N: 64, K: 256}
	vsu, refV, err := workloads.DGEMMVSU(size)
	if err != nil {
		log.Fatal(err)
	}
	mma, refM, err := workloads.DGEMMMMA(size)
	if err != nil {
		log.Fatal(err)
	}

	// Verify numerical correctness of both codings functionally.
	verify(vsu, refV, size)
	verify(mma, refM, size)
	fmt.Printf("both codings verified: C = A x B for %dx%dx%d\n\n", size.M, size.N, size.K)

	runs := []struct {
		label string
		cfg   *uarch.Config
		w     *workloads.Workload
		peak  float64
	}{
		{"POWER9  VSU", uarch.POWER9(), vsu, 8},
		{"POWER10 VSU", uarch.POWER10(), vsu, 16},
		{"POWER10 MMA", uarch.POWER10(), mma, 32},
	}
	var baseFlops, basePower float64
	for i, r := range runs {
		res, err := uarch.Simulate(r.cfg, []trace.Stream{trace.NewVMStream(r.w.Prog, r.w.Budget)},
			50_000_000, uarch.WithWarmup(r.w.Warmup))
		if err != nil {
			log.Fatal(err)
		}
		rep := power.NewModel(r.cfg).Report(&res.Activity)
		fpc := res.Activity.FlopsPerCycle()
		if i == 0 {
			baseFlops, basePower = fpc, rep.Total
		}
		fmt.Printf("%s  %6.2f flops/cyc (%.0f%% of peak %g)  power %.3f  |  %.2fx flops, %.2fx power vs P9 VSU\n",
			r.label, fpc, fpc/r.peak*100, r.peak, rep.Total, fpc/baseFlops, rep.Total/basePower)
	}
	fmt.Println("\npaper: P10 VSU 1.95x at 0.678x power; P10 MMA 5.47x at 0.759x power")
}

func verify(w *workloads.Workload, ref []float64, size workloads.GEMMSize) {
	vm := isa.NewVM(w.Prog)
	if _, err := vm.Run(1<<28, nil); err != nil {
		log.Fatal(err)
	}
	const addrC = 0x70_0000
	for i, want := range ref {
		var bits uint64
		for j := 0; j < 8; j++ {
			bits |= uint64(vm.Mem.ByteAt(addrC+uint64(8*i+j))) << (8 * j)
		}
		got := math.Float64frombits(bits)
		if math.Abs(got-want) > 1e-9 {
			log.Fatalf("%s: C[%d] = %v, want %v", w.Name, i, got, want)
		}
	}
}
