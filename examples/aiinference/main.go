// AI inference: the Fig. 6 experiment as a standalone program — ResNet-50
// and BERT-Large instruction-stream models on POWER9, POWER10 without MMA,
// and POWER10 with MMA, reporting the per-panel relative metrics.
package main

import (
	"fmt"
	"log"

	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

func main() {
	models := []struct {
		name string
		mk   func(bool) (*workloads.Workload, error)
	}{
		{"ResNet-50 (FP32, batch 100)", workloads.ResNet50},
		{"BERT-Large (FP32, batch 8, SQuAD)", workloads.BERTLarge},
	}
	for _, m := range models {
		vsu, err := m.mk(false)
		if err != nil {
			log.Fatal(err)
		}
		mma, err := m.mk(true)
		if err != nil {
			log.Fatal(err)
		}
		runs := []struct {
			label string
			cfg   *uarch.Config
			w     *workloads.Workload
		}{
			{"POWER9 (baseline)  ", uarch.POWER9(), vsu},
			{"POWER10 (w/o MMA)  ", uarch.POWER10NoMMA(), vsu},
			{"POWER10 (w/ MMA)   ", uarch.POWER10(), mma},
		}
		fmt.Printf("== %s ==\n", m.name)
		var baseCycles, baseInsts float64
		for i, r := range runs {
			res, err := uarch.Simulate(r.cfg,
				[]trace.Stream{trace.NewVMStream(r.w.Prog, r.w.Budget)}, 80_000_000)
			if err != nil {
				log.Fatal(err)
			}
			a := res.Activity
			if i == 0 {
				baseCycles, baseInsts = float64(a.Cycles), float64(a.Instructions)
			}
			fmt.Printf("%s insts %.2fx  CPI %.3f  cycles %.2fx  speedup %.2fx  (MMA ops %d)\n",
				r.label,
				float64(a.Instructions)/baseInsts, a.CPI(),
				float64(a.Cycles)/baseCycles, baseCycles/float64(a.Cycles), a.MMAOps)
		}
		fmt.Println()
	}
	fmt.Println("paper core speedups: ResNet-50 2.25x / 3.55x; BERT-Large 2.08x / 3.64x")
	fmt.Println("socket level: x2.5 cores, x1.1 system -> up to 10x FP32, 21x INT8")
}
