// Quickstart: simulate one workload on the POWER9 and POWER10 core models
// and compare performance, power, and energy efficiency — the smallest
// end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"power10sim/internal/power"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

func main() {
	// 1. Pick a workload: a synthetic SPECint-class compression benchmark.
	w := workloads.Compress()

	// 2. Simulate it on both core generations at the same V/F point.
	type outcome struct {
		name  string
		ipc   float64
		power float64
	}
	var results []outcome
	for _, cfg := range []*uarch.Config{uarch.POWER9(), uarch.POWER10()} {
		stream := trace.NewVMStream(w.Prog, w.Budget)
		res, err := uarch.Simulate(cfg, []trace.Stream{stream}, 50_000_000,
			uarch.WithWarmup(w.Warmup))
		if err != nil {
			log.Fatal(err)
		}
		rep := power.NewModel(cfg).Report(&res.Activity)
		results = append(results, outcome{cfg.Name, res.IPC(), rep.Total})
		fmt.Printf("%-8s  IPC %.3f  power %.3f  [clock %.2f switch %.2f array %.2f leak %.2f]\n",
			cfg.Name, res.IPC(), rep.Total, rep.Clock, rep.Switching, rep.Array, rep.Leakage)
	}

	// 3. The paper's headline ratios for this workload.
	speedup := results[1].ipc / results[0].ipc
	powerRatio := results[1].power / results[0].power
	fmt.Printf("\nPOWER10 vs POWER9 on %q: %.2fx performance at %.2fx power -> %.2fx perf/W\n",
		w.Name, speedup, powerRatio, speedup/powerRatio)
	fmt.Println("(paper, SPECint suite average: ~1.3x at ~0.5x -> 2.6x)")
}
