// Fault injection: run a small statistical latch fault-injection campaign
// on the POWER10 core model and cross-validate SERMiner's analytic derating
// (the Figs. 13-14 machinery) against injection-measured masking, then show
// the upset-consequence breakdown the analytic model cannot see.
package main

import (
	"fmt"
	"log"
	"time"

	"power10sim/internal/faultinject"
	"power10sim/internal/runner"
	"power10sim/internal/uarch"
)

func main() {
	// 1. A hardened simulation pool: wall-clock watchdog per simulation plus
	// bounded retries, so a wedged or panicking run degrades into a tagged
	// failed trial instead of killing the campaign.
	pool := runner.New(0)
	pool.SetPolicy(runner.Policy{Timeout: time.Minute, MaxAttempts: 2})

	// 2. The default campaign cases: a zero-data and a random-data
	// microprobe testcase (opposite switching profiles) plus the SPECint
	// compression proxy.
	cases, err := faultinject.DefaultCases()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run a seeded Monte Carlo campaign. Each trial flips one latch bit
	// at a random (site, cycle); stage 1 classifies latch-level masking with
	// the same rule SERMiner applies analytically, and stage 2 replays
	// captured flips to the architectural level (SDC / detected / hang /
	// masked). The result is bit-identical for any worker count.
	c := &faultinject.Campaign{
		Cfg:          uarch.POWER10(),
		Cases:        cases,
		Trials:       300,
		Seed:         7,
		Consequences: true,
		Pool:         pool,
	}
	res, err := c.Run()
	if err != nil {
		log.Fatal(err)
	}

	// 4. The cross-validation table: analytic vulnerable fraction vs
	// injection-measured non-masked fraction per workload and VT point.
	fmt.Print(res.ValidationTable())
	fmt.Println()
	fmt.Print(res.OutcomeTable())
	fmt.Printf("\nmax validation gap: %.1f%% of trials\n", 100*res.MaxValidationGap())
	if s := res.FailureSummary(); s != "" {
		fmt.Print(s)
	}
}
