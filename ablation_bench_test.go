package power10sim_test

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// toggles one POWER10 mechanism and reports the performance (and where
// relevant, power) delta on a sensitive workload. These quantify how much
// each individual decision buys, complementing the cumulative Fig. 4 ladder.

import (
	"testing"

	"power10sim/internal/isa"
	"power10sim/internal/power"
	"power10sim/internal/trace"
	"power10sim/internal/uarch"
	"power10sim/internal/workloads"
)

func runFor(b *testing.B, cfg *uarch.Config, w *workloads.Workload) (*uarch.Activity, *power.Report) {
	b.Helper()
	res, err := uarch.Simulate(cfg, []trace.Stream{trace.NewVMStream(w.Prog, w.Budget)},
		50_000_000, uarch.WithWarmup(w.Warmup))
	if err != nil {
		b.Fatal(err)
	}
	return &res.Activity, power.NewModel(cfg).Report(&res.Activity)
}

func BenchmarkAblationFusion(b *testing.B) {
	// The dependent ALU pair is loop-carried, so fusing it halves the
	// critical path ("reduced or zero latency for dependent operations")
	// and halves the internal ops (energy).
	bb := isa.NewBuilder("fuse-pairs")
	bb.Li(isa.GPR(1), 0)
	bb.Li(isa.GPR(2), 6000)
	bb.Label("top")
	bb.Addi(isa.GPR(10), isa.GPR(10), 1)
	bb.Add(isa.GPR(10), isa.GPR(10), isa.GPR(11)) // fused with the addi
	bb.Addi(isa.GPR(1), isa.GPR(1), 1)
	bb.Bc(isa.CondLT, isa.GPR(1), isa.GPR(2), "top")
	bb.Halt()
	w := &workloads.Workload{Name: "fuse-pairs", Prog: bb.MustBuild(), Budget: 25_000}
	for i := 0; i < b.N; i++ {
		on, onRep := runFor(b, uarch.POWER10(), w)
		off := uarch.POWER10()
		off.FusionEnabled = false
		noFuse, offRep := runFor(b, off, w)
		b.ReportMetric(on.IPC()/noFuse.IPC(), "fusion-speedup-x")
		// Energy per instruction = power / IPC; fusion wins on both axes.
		b.ReportMetric((offRep.Total/noFuse.IPC())/(onRep.Total/on.IPC()), "fusion-energy-saving-x")
		b.ReportMetric(float64(on.FusedPairs)/float64(on.Instructions)*100, "fused-%")
	}
}

func BenchmarkAblationEATagging(b *testing.B) {
	w := workloads.Compress()
	for i := 0; i < b.N; i++ {
		_, ea := runFor(b, uarch.POWER10(), w)
		ra := uarch.POWER10()
		ra.EATaggedL1 = false
		raAct, raRep := runFor(b, ra, w)
		_ = raAct
		b.ReportMetric(raRep.Component("mmu-derat")/max(ea.Component("mmu-derat"), 1e-9), "derat-power-x")
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func BenchmarkAblationMMAForwarding(b *testing.B) {
	// A 2-accumulator ger chain: without internal accumulator forwarding
	// each dependent ger waits the full MMA latency; with it they chain
	// back to back (the paper's "efficient back-to-back execution").
	bb := isa.NewBuilder("ger-chain")
	bb.Li(isa.GPR(1), 0)
	bb.Li(isa.GPR(2), 4000)
	bb.Label("top")
	bb.Xvf64gerpp(isa.ACC(0), isa.VSR(0), isa.VSR(2))
	bb.Xvf64gerpp(isa.ACC(1), isa.VSR(1), isa.VSR(3))
	bb.Addi(isa.GPR(1), isa.GPR(1), 1)
	bb.Bc(isa.CondLT, isa.GPR(1), isa.GPR(2), "top")
	bb.Halt()
	w := &workloads.Workload{Name: "ger-chain", Prog: bb.MustBuild(), Budget: 40_000}
	for i := 0; i < b.N; i++ {
		fwd, _ := runFor(b, uarch.POWER10(), w)
		noFwd := uarch.POWER10()
		noFwd.MMAAccumForwarding = false
		slow, _ := runFor(b, noFwd, w)
		b.ReportMetric(fwd.FlopsPerCycle()/slow.FlopsPerCycle(), "acc-fwd-speedup-x")
	}
}

func BenchmarkAblationStoreGather(b *testing.B) {
	// Bursts of consecutive stores (memset/struct-init style): gathering
	// retires two store-queue entries per cycle to the L1.
	bb := isa.NewBuilder("store-burst")
	bb.Li(isa.GPR(1), 0x9000)
	bb.Li(isa.GPR(2), 0)
	bb.Li(isa.GPR(3), 2000)
	bb.Label("top")
	for k := 0; k < 8; k++ {
		bb.St(isa.GPR(4), isa.GPR(1), int64(k*8))
	}
	bb.Addi(isa.GPR(2), isa.GPR(2), 1)
	bb.Bc(isa.CondLT, isa.GPR(2), isa.GPR(3), "top")
	bb.Halt()
	w := &workloads.Workload{Name: "store-burst", Prog: bb.MustBuild(), Budget: 24_000}
	for i := 0; i < b.N; i++ {
		on, _ := runFor(b, uarch.POWER10(), w)
		off := uarch.POWER10()
		off.StoreGather = false
		noGather, _ := runFor(b, off, w)
		// Gathering halves the L1 store commits (a switching-energy win);
		// drain bandwidth usually hides the latency effect.
		b.ReportMetric(float64(noGather.L1DAccesses)/float64(on.L1DAccesses), "l1d-store-access-x")
		b.ReportMetric(float64(on.SQGathered), "gathered-entries")
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	w := workloads.MediaVec()
	for i := 0; i < b.N; i++ {
		on, _ := runFor(b, uarch.POWER10(), w)
		off := uarch.POWER10()
		off.PrefetchStreams = 0
		noPf, _ := runFor(b, off, w)
		b.ReportMetric(on.IPC()/noPf.IPC(), "prefetch-speedup-x")
	}
}

func BenchmarkAblationIndirectPredictor(b *testing.B) {
	w := workloads.Interp()
	for i := 0; i < b.N; i++ {
		on, _ := runFor(b, uarch.POWER10(), w)
		off := uarch.POWER10()
		off.BPred.IndirEntries = 0
		noInd, _ := runFor(b, off, w)
		b.ReportMetric(on.IPC()/noInd.IPC(), "indirect-pred-speedup-x")
		b.ReportMetric(noInd.MispredictsPerKI()-on.MispredictsPerKI(), "MPKI-saved")
	}
}

func BenchmarkAblationMMAPowerGate(b *testing.B) {
	// Leakage reclaimed by gating the idle MMA on an integer workload.
	w := workloads.IntCompute()
	for i := 0; i < b.N; i++ {
		_, gated := runFor(b, uarch.POWER10(), w)
		act, _ := runFor(b, uarch.POWER10(), w)
		busy := *act
		busy.MMAActiveCycles = busy.Cycles
		ungated := power.NewModel(uarch.POWER10()).Report(&busy)
		b.ReportMetric((ungated.Leakage-gated.Leakage)/gated.Total*100, "leak-reclaim-%")
	}
}

func BenchmarkFutureWorkConfig(b *testing.B) {
	// The paper's closing future-work projection as an ablation.
	w := workloads.Compress()
	for i := 0; i < b.N; i++ {
		p10, rep10 := runFor(b, uarch.POWER10(), w)
		next, repNext := runFor(b, uarch.POWER10Next(), w)
		perf := next.IPC() / p10.IPC()
		pw := repNext.Total / rep10.Total
		b.ReportMetric(perf/pw, "future-perfW-x")
	}
}
